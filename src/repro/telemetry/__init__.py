"""``repro.telemetry`` — spans, counters, and run reports.

The observability layer of the search/simulator stack: a zero-dependency,
process-local :class:`~repro.telemetry.registry.Telemetry` registry that
the engine, evaluators, cache, and simulators record into when enabled —
and skip at near-zero cost when not (the default).  Typical use::

    import repro.telemetry as telemetry

    telemetry.enable()
    result = study.run()
    print(study.report())                  # stage-time breakdown
    telemetry.reset()                      # fresh window for the next run

What gets recorded (when enabled):

* ``DesignSpaceSearch.search`` — a root ``search`` span with per-stage
  children (``search.flatten`` / ``search.cache`` / ``search.dedupe`` /
  ``search.dispatch`` / ``search.aggregate``);
* ``EvaluationCache`` — ``cache.hit`` / ``cache.miss`` / ``cache.insert``
  / ``cache.lock_retries`` counters;
* the worker pool — per-chunk ``worker.chunk`` spans measured *in the
  worker* (each instrumented chunk captures into a local registry whose
  snapshot ships back over the chunk-result channel and merges under the
  parent's ``search.dispatch``), plus ``search.dispatch.chunks`` /
  ``search.dispatch.tasks`` / ``search.dispatch.retries`` counters;
* the simulators — ``sim.runs`` / ``sim.events``, control-policy action
  counters (``sim.control.*``), fault accounting (``sim.faults.*``), and
  the multiplexed loop's iteration and allocation-kernel batch-size
  counters (``sim.multiplex.*``);
* ``Study.report()`` renders the registry,
  :func:`repro.analysis.export.telemetry_to_json` persists it next to a
  benchmark's ``BENCH_*.json``.

Counter content is deterministic — exact counts, reproducible across
runs at a fixed seed — and wall times are measurements only: they never
enter a cache key or a simulation result.

Logger hierarchy
----------------
Every module logs to a ``repro.*`` logger named after itself
(``logging.getLogger(__name__)``)::

    repro                       the hierarchy root this helper configures
    repro.search.engine         dispatch retries, pool lifecycle
    repro.search.cache          sqlite lock backoff warnings

Because child loggers propagate upward, attaching a handler or level to
``repro`` (or any intermediate like ``repro.search``) observes every
module below it.  :func:`configure_logging` wires a stream handler onto
the ``repro`` root — idempotently, so repeated calls reconfigure rather
than stack duplicate handlers.
"""

from __future__ import annotations

import logging
import sys

from repro.telemetry.registry import (
    Telemetry,
    TelemetrySnapshot,
    capture,
    count,
    disable,
    enable,
    enabled,
    gauge,
    get_telemetry,
    reset,
    snapshot,
    span,
)
from repro.telemetry.report import attribution, render_report, span_rows

__all__ = [
    "Telemetry",
    "TelemetrySnapshot",
    "attribution",
    "capture",
    "configure_logging",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_telemetry",
    "render_report",
    "reset",
    "snapshot",
    "span",
    "span_rows",
]


def configure_logging(
    level: int = logging.INFO,
    stream=None,
    fmt: str = "%(levelname)s %(name)s: %(message)s",
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger hierarchy.

    Sets the ``repro`` root logger to ``level`` and wires a
    :class:`logging.StreamHandler` (``stream`` or stderr) with ``fmt``
    onto it, so every ``repro.*`` module logger — see the module
    docstring for the hierarchy — becomes visible without touching the
    global root logger.  Idempotent: the one handler this helper owns is
    reconfigured on repeated calls instead of duplicated.  Returns the
    ``repro`` logger for further tweaking.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    handler = None
    for existing in logger.handlers:
        if getattr(existing, "_repro_telemetry_handler", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(
            stream if stream is not None else sys.stderr
        )
        handler._repro_telemetry_handler = True
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(fmt))
    return logger
