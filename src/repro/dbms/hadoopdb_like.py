"""HadoopDB-like model: a parallel DBMS coordinated through Hadoop.

Section 3.2: "Hadoop was designed with fault tolerance as one of the
primary goals and consequently, the performance of our version of HadoopDB
was limited by the Hadoop bottleneck", and the evaluation "found that the
best performing cluster is not always the most energy-efficient" (results
omitted from the paper for space).

We model the bottleneck as job-level coordination overhead on top of the
Vertica-like stage model:

* a fixed per-job cost (job setup, JVM startup, HDFS metadata) that does
  not shrink with more nodes, and
* a per-node scheduling/heartbeat cost that *grows* with cluster size.

Both are energy-relevant: the overhead time is spent at low utilization on
every node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.design_space import DesignPoint, TradeoffCurve
from repro.dbms.vertica_like import DBMSRunResult, QueryProfile, VerticaLikeDBMS
from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.hardware.presets import CLUSTER_V_NODE

__all__ = ["HadoopOverheads", "HadoopDBLike"]


@dataclass(frozen=True)
class HadoopOverheads:
    """Coordination costs of the Hadoop layer."""

    #: fixed seconds per job regardless of cluster size
    job_startup_s: float = 15.0
    #: additional seconds per cluster node (task scheduling, heartbeats)
    per_node_s: float = 1.0
    #: CPU utilization during coordination (mostly idle waiting)
    coordination_utilization: float = 0.15

    def __post_init__(self) -> None:
        if self.job_startup_s < 0 or self.per_node_s < 0:
            raise ConfigurationError("overhead times must be >= 0")
        if not 0.0 < self.coordination_utilization <= 1.0:
            raise ConfigurationError(
                "coordination utilization must be in (0, 1], got "
                f"{self.coordination_utilization}"
            )

    def time_s(self, num_nodes: int) -> float:
        return self.job_startup_s + self.per_node_s * num_nodes


class HadoopDBLike:
    """Vertica-like engine wrapped in Hadoop coordination overhead."""

    def __init__(
        self,
        node: NodeSpec = CLUSTER_V_NODE,
        overheads: HadoopOverheads | None = None,
    ):
        self.node = node
        self.overheads = overheads or HadoopOverheads()
        self._engine = VerticaLikeDBMS(node)

    def run(self, profile: QueryProfile, num_nodes: int) -> DBMSRunResult:
        base = self._engine.run(profile, num_nodes)
        overhead_time = self.overheads.time_s(num_nodes)
        overhead_power = self.node.power_model.power(
            self.overheads.coordination_utilization
        )
        return DBMSRunResult(
            query=f"hadoopdb:{profile.name}",
            num_nodes=num_nodes,
            time_s=base.time_s + overhead_time,
            energy_j=base.energy_j + num_nodes * overhead_power * overhead_time,
            local_time_s=base.local_time_s,
            shuffle_time_s=base.shuffle_time_s,
        )

    def size_sweep(self, profile: QueryProfile, sizes: Sequence[int]) -> TradeoffCurve:
        """Size sweep with Hadoop overheads; largest size is the reference."""
        if not sizes:
            raise ConfigurationError("no cluster sizes given")
        ordered = sorted(set(sizes), reverse=True)
        points = []
        for size in ordered:
            result = self.run(profile, size)
            points.append(
                DesignPoint(
                    label=f"{size}N",
                    cluster=ClusterSpec.homogeneous(self.node, size, name=f"{size}N"),
                    time_s=result.time_s,
                    energy_j=result.energy_j,
                )
            )
        return TradeoffCurve(points, reference_label=points[0].label)
