"""Behavioural models of the off-the-shelf parallel DBMSs of Section 3.

The paper treats Vertica and HadoopDB as black boxes and characterizes each
query by how its execution time splits between perfectly-partitionable
local work and network-bound repartitioning.  These models reproduce that
characterization:

* :mod:`repro.dbms.vertica_like` — stage-based column-store model with the
  paper's published per-query splits (Q1: all local; Q21: 94.5% local;
  Q12: 52% local at 8 nodes) and a calibrated sub-linear shuffle-scaling
  exponent capturing switch contention.
* :mod:`repro.dbms.hadoopdb_like` — adds Hadoop's coordination overhead
  (fixed job startup plus per-task scheduling cost), "the Hadoop
  bottleneck" of Section 3.2.
"""

from repro.dbms.calibration import (
    Q1_PROFILE,
    Q12_PROFILE,
    Q21_PROFILE,
    SHUFFLE_SCALING_ALPHA,
)
from repro.dbms.hadoopdb_like import HadoopDBLike, HadoopOverheads
from repro.dbms.vertica_like import DBMSRunResult, QueryProfile, VerticaLikeDBMS

__all__ = [
    "QueryProfile",
    "DBMSRunResult",
    "VerticaLikeDBMS",
    "HadoopDBLike",
    "HadoopOverheads",
    "Q1_PROFILE",
    "Q12_PROFILE",
    "Q21_PROFILE",
    "SHUFFLE_SCALING_ALPHA",
]
