"""Published query characterizations and calibrated scaling constants.

Per-query local/shuffle splits come straight from Section 3.1:

* **Q1** — "does not involve any joins and only does simple aggregations on
  the LINEITEM table"; scales linearly -> local fraction 1.0.
* **Q21** — "the bulk of this query (94.5% of the total query time for
  eight nodes) is spent doing node local execution".
* **Q12** — "spends 48% of the query time network bottlenecked during
  repartitioning with the eight node cluster" -> local fraction 0.52.

``SHUFFLE_SCALING_ALPHA`` is the one calibrated constant: the shuffle
stage's scaling exponent.  The paper reports that going from 16N to 8N on
Q12 "reduces the performance by only 36%", i.e. T(16)/T(8) ~= 0.64 with the
splits above; solving ``0.52/2 + 0.48 * 0.5**alpha = 0.64`` gives
``alpha ~= 0.34``.  Physically this is the SMC switch's contention: each
node's send volume halves with twice the nodes, but the flow count grows
quadratically.  The ablation bench shows that ``alpha = 1`` (an ideal
switch) would erase Figure 1(a)'s energy savings entirely.

Reference response times are representative values for warm scale-1000
runs on the 16-node cluster-V; every figure normalizes them away.
"""

from __future__ import annotations

from repro.dbms.vertica_like import QueryProfile

__all__ = [
    "SHUFFLE_SCALING_ALPHA",
    "Q1_PROFILE",
    "Q12_PROFILE",
    "Q21_PROFILE",
]

#: Calibrated shuffle-stage scaling exponent (see module docstring).
SHUFFLE_SCALING_ALPHA = 0.34

#: TPC-H Q1 at SF1000: pure local scan + aggregate (Figure 2a).
Q1_PROFILE = QueryProfile(
    name="tpch-q1",
    local_fraction=1.0,
    reference_nodes=8,
    reference_time_s=35.0,
    shuffle_scaling=SHUFFLE_SCALING_ALPHA,
)

#: TPC-H Q12 at SF1000: 48% of time network-bound at 8N (Figures 1a).
Q12_PROFILE = QueryProfile(
    name="tpch-q12",
    local_fraction=0.52,
    reference_nodes=8,
    reference_time_s=60.0,
    shuffle_scaling=SHUFFLE_SCALING_ALPHA,
)

#: TPC-H Q21 at SF1000: 94.5% local at 8N (Figure 2b).
Q21_PROFILE = QueryProfile(
    name="tpch-q21",
    local_fraction=0.945,
    reference_nodes=8,
    reference_time_s=160.0,
    shuffle_scaling=SHUFFLE_SCALING_ALPHA,
)
