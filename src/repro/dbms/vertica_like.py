"""Stage-based model of a Vertica-like column-store parallel DBMS.

Section 3.1 explains every speedup result through one number per query: the
fraction of execution time spent in node-local processing versus network
repartitioning (at the 8-node reference).  We model a query as two stages:

* **local** — perfectly partitionable work; time scales as ``1/N``;
* **shuffle** — repartitioning; time scales as ``(N0/N)**alpha`` with
  ``alpha < 1``: adding nodes shrinks each node's send volume, but switch
  contention grows, so the stage improves sub-linearly.  ``alpha`` is
  calibrated in :mod:`repro.dbms.calibration` against the published Q12
  speedups (8N performance ratio ~0.64 relative to 16N).

Energy per Section 3's methodology: each stage runs at a characteristic
CPU utilization (high while computing locally, low while network-blocked),
node power comes from the Table 1 regression, and cluster energy is
``N * sum(stage power x stage time)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.design_space import DesignPoint, TradeoffCurve
from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.hardware.presets import CLUSTER_V_NODE

__all__ = ["QueryProfile", "DBMSRunResult", "VerticaLikeDBMS"]


@dataclass(frozen=True)
class QueryProfile:
    """Black-box characterization of one query on the reference cluster."""

    name: str
    #: fraction of response time spent on node-local work at the reference size
    local_fraction: float
    #: cluster size at which ``local_fraction`` was measured
    reference_nodes: int
    #: response time at the reference size (seconds)
    reference_time_s: float
    #: shuffle-stage scaling exponent (1 = ideal, 0 = size-independent)
    shuffle_scaling: float
    #: CPU utilization during local processing
    local_utilization: float = 0.90
    #: CPU utilization while network-blocked in the shuffle stage
    shuffle_utilization: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.local_fraction <= 1.0:
            raise ConfigurationError(
                f"{self.name}: local_fraction must be in [0, 1], got {self.local_fraction}"
            )
        if self.reference_nodes <= 0 or self.reference_time_s <= 0:
            raise ConfigurationError(f"{self.name}: reference size/time must be > 0")
        if not 0.0 <= self.shuffle_scaling <= 1.0:
            raise ConfigurationError(
                f"{self.name}: shuffle_scaling must be in [0, 1], got {self.shuffle_scaling}"
            )
        for label, util in (
            ("local", self.local_utilization),
            ("shuffle", self.shuffle_utilization),
        ):
            if not 0.0 < util <= 1.0:
                raise ConfigurationError(
                    f"{self.name}: {label} utilization must be in (0, 1], got {util}"
                )

    @property
    def shuffle_fraction(self) -> float:
        return 1.0 - self.local_fraction


@dataclass(frozen=True)
class DBMSRunResult:
    """Response time and energy of one query at one cluster size."""

    query: str
    num_nodes: int
    time_s: float
    energy_j: float
    local_time_s: float
    shuffle_time_s: float

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0


class VerticaLikeDBMS:
    """Runs query profiles at any cluster size, producing time and energy."""

    def __init__(self, node: NodeSpec = CLUSTER_V_NODE):
        self.node = node

    def run(self, profile: QueryProfile, num_nodes: int) -> DBMSRunResult:
        if num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be > 0, got {num_nodes}")
        n0 = profile.reference_nodes
        local0 = profile.local_fraction * profile.reference_time_s
        shuffle0 = profile.shuffle_fraction * profile.reference_time_s

        local_time = local0 * n0 / num_nodes
        shuffle_time = shuffle0 * (n0 / num_nodes) ** profile.shuffle_scaling

        power_local = self.node.power_model.power(profile.local_utilization)
        power_shuffle = self.node.power_model.power(profile.shuffle_utilization)
        energy = num_nodes * (power_local * local_time + power_shuffle * shuffle_time)

        return DBMSRunResult(
            query=profile.name,
            num_nodes=num_nodes,
            time_s=local_time + shuffle_time,
            energy_j=energy,
            local_time_s=local_time,
            shuffle_time_s=shuffle_time,
        )

    def size_sweep(
        self, profile: QueryProfile, sizes: Sequence[int]
    ) -> TradeoffCurve:
        """Evaluate a homogeneous size sweep; largest size is the reference.

        This reproduces the Section 3 experiments ("varying the cluster
        size between 8 and 16 nodes, in 2 node increments").
        """
        if not sizes:
            raise ConfigurationError("no cluster sizes given")
        ordered = sorted(set(sizes), reverse=True)
        points = []
        for size in ordered:
            result = self.run(profile, size)
            points.append(
                DesignPoint(
                    label=f"{size}N",
                    cluster=ClusterSpec.homogeneous(self.node, size, name=f"{size}N"),
                    time_s=result.time_s,
                    energy_j=result.energy_j,
                )
            )
        return TradeoffCurve(points, reference_label=points[0].label)
