"""Columnar record batches — the tuple representation of functional P-store.

A :class:`RecordBatch` is a set of equally-long named numpy arrays.  It is
deliberately minimal: just enough structure for the scan / filter / project /
exchange / hash-join operators to push realistic data through the same plans
the simulator prices.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import ExecutionError

__all__ = ["RecordBatch"]


class RecordBatch:
    """An immutable-ish batch of rows stored column-wise."""

    def __init__(self, columns: Mapping[str, np.ndarray]):
        if not columns:
            raise ExecutionError("a RecordBatch needs at least one column")
        lengths = {name: len(array) for name, array in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ExecutionError(f"ragged columns: {lengths}")
        self._columns = {name: np.asarray(array) for name, array in columns.items()}
        self._num_rows = next(iter(lengths.values()))

    # ------------------------------------------------------------- inspection
    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise ExecutionError(
                f"no column {name!r}; have {sorted(self._columns)}"
            ) from None

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def nbytes(self) -> int:
        """Total payload bytes across all columns."""
        return sum(array.nbytes for array in self._columns.values())

    # ------------------------------------------------------------ combinators
    def take(self, indices: np.ndarray) -> "RecordBatch":
        """Row subset/reorder by integer indices."""
        return RecordBatch({name: array[indices] for name, array in self._columns.items()})

    def filter(self, mask: np.ndarray) -> "RecordBatch":
        """Row subset by boolean mask."""
        if len(mask) != self._num_rows:
            raise ExecutionError(
                f"mask length {len(mask)} != batch rows {self._num_rows}"
            )
        return RecordBatch({name: array[mask] for name, array in self._columns.items()})

    def project(self, names: Iterable[str]) -> "RecordBatch":
        """Column subset (in the given order)."""
        names = list(names)
        if not names:
            raise ExecutionError("projection must keep at least one column")
        return RecordBatch({name: self.column(name) for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "RecordBatch":
        """Rename columns; names absent from ``mapping`` are kept."""
        return RecordBatch(
            {mapping.get(name, name): array for name, array in self._columns.items()}
        )

    def slices(self, batch_rows: int) -> Iterable["RecordBatch"]:
        """Split into consecutive batches of at most ``batch_rows`` rows."""
        if batch_rows <= 0:
            raise ExecutionError(f"batch_rows must be > 0, got {batch_rows}")
        for start in range(0, self._num_rows, batch_rows):
            yield RecordBatch(
                {
                    name: array[start : start + batch_rows]
                    for name, array in self._columns.items()
                }
            )

    @classmethod
    def concat(cls, batches: Iterable["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches with identical column sets."""
        batches = list(batches)
        if not batches:
            raise ExecutionError("cannot concat zero batches")
        names = batches[0].column_names
        for batch in batches[1:]:
            if batch.column_names != names:
                raise ExecutionError(
                    f"column mismatch: {batch.column_names} vs {names}"
                )
        return cls(
            {name: np.concatenate([b.column(name) for b in batches]) for name in names}
        )

    @classmethod
    def empty_like(cls, template: "RecordBatch") -> "RecordBatch":
        return cls(
            {
                name: np.empty(0, dtype=template.column(name).dtype)
                for name in template.column_names
            }
        )

    def __repr__(self) -> str:
        return f"RecordBatch(rows={self._num_rows}, columns={list(self._columns)})"
