"""Power-trace helpers bridging the simulator and the simulated meters.

The meters in :mod:`repro.hardware.meter` sample an arbitrary
``power(t) -> watts`` function; :func:`power_function` turns a
:class:`~repro.simulator.engine.SimulationResult` into one, so experiments
can "measure" a simulated run exactly the way the authors metered their
physical clusters.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import SimulationError
from repro.simulator.engine import Interval, SimulationResult

__all__ = ["power_function", "energy_from_intervals", "utilization_series"]


def power_function(result: SimulationResult) -> Callable[[float], float]:
    """Cluster power as a function of time (step function; O(log n) lookup)."""
    if not result.intervals:
        raise SimulationError("result has no recorded intervals")
    starts = [interval.start_s for interval in result.intervals]
    intervals = result.intervals

    def power(time_s: float) -> float:
        if time_s < starts[0]:
            raise SimulationError(f"time {time_s} precedes the simulation")
        # binary search for the interval containing time_s
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= time_s:
                lo = mid
            else:
                hi = mid - 1
        return intervals[lo].cluster_power_w

    return power


def energy_from_intervals(intervals: Sequence[Interval]) -> float:
    """Exact energy of a piecewise-constant trace (joules)."""
    return sum(interval.energy_j for interval in intervals)


def utilization_series(
    result: SimulationResult, node_id: int
) -> list[tuple[float, float]]:
    """(time, utilization) step series for one node, one point per interval."""
    return [
        (interval.start_s, interval.node_utilization[node_id])
        for interval in result.intervals
    ]
