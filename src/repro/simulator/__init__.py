"""Fluid discrete-event cluster simulator.

The paper's P-store experiments are *rate-bound*: every phase of a parallel
hash join proceeds at the speed of its slowest shared resource (disk, CPU,
NIC in/out).  This package models a cluster as a set of rate-capacity
resources and queries as *fluid flows* that demand those resources in fixed
proportions; a max-min fair allocator determines instantaneous rates, and
the engine advances time from flow completion to flow completion,
integrating per-node CPU utilization into energy via the hardware power
models.

This reproduces exactly the quantities the paper measures — response time
and joules per query — including under concurrent queries (Figures 3 and 4)
and heterogeneous Beefy/Wimpy clusters (Figure 7).
"""

from repro.simulator.allocation import max_min_fair_rates
from repro.simulator.engine import ClusterSimulator, Interval, SimulationResult
from repro.simulator.jobs import FlowSpec, Job, Phase
from repro.simulator.multiplex import run_multiplexed
from repro.simulator.network import IDEAL_SWITCH, SwitchModel
from repro.simulator.resources import Resource, ResourcePool

__all__ = [
    "max_min_fair_rates",
    "run_multiplexed",
    "ClusterSimulator",
    "SimulationResult",
    "Interval",
    "FlowSpec",
    "Phase",
    "Job",
    "SwitchModel",
    "IDEAL_SWITCH",
    "Resource",
    "ResourcePool",
]
