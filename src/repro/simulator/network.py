"""Switch behaviour: ideal and contention-afflicted.

Section 4.1 of the paper: *"an increase in network traffic on the cluster
switches causes interference and further delays in communication"* — this
interference is what makes Vertica's TPC-H Q12 scale sub-linearly and what
makes the energy savings of smaller P-store clusters grow with query
concurrency (Figure 3 a->c).

We model it as a per-flow efficiency loss on every NIC resource: with ``F``
active network flows crossing the switch, each NIC's effective capacity is

    capacity / (1 + per_flow_interference * (F - 1))

``per_flow_interference = 0`` gives an ideal, non-blocking switch.  The
default for the cluster-V SMC switch (0.012) was calibrated so the Figure 3
concurrency sweep reproduces the paper's 20% -> 24% energy-saving
progression; the ablation bench ``test_ablation.py`` shows the figure
collapses onto constant-energy behaviour when interference is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SwitchModel", "IDEAL_SWITCH", "SMC_GS5_SWITCH"]


@dataclass(frozen=True)
class SwitchModel:
    """Contention model applied to NIC resources during allocation."""

    per_flow_interference: float = 0.0

    def __post_init__(self) -> None:
        if self.per_flow_interference < 0:
            raise ConfigurationError(
                f"per_flow_interference must be >= 0, got {self.per_flow_interference}"
            )

    def efficiency(self, active_network_flows: int) -> float:
        """Multiplier (0, 1] applied to NIC capacities."""
        if active_network_flows <= 1:
            return 1.0
        return 1.0 / (1.0 + self.per_flow_interference * (active_network_flows - 1))


#: Non-blocking switch: NICs always deliver full capacity.
IDEAL_SWITCH = SwitchModel(per_flow_interference=0.0)

#: Calibrated model of the paper's 10/100/1000 SMCGS5 switch (see module
#: docstring for the calibration target).
SMC_GS5_SWITCH = SwitchModel(per_flow_interference=0.012)
