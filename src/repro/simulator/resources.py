"""Rate-capacity resources of a simulated cluster.

Each node contributes four resources — CPU, disk, NIC-out, NIC-in — named
``"{kind}:{node_id}"``.  Capacities are in MB/s and come straight from the
node's :class:`~repro.hardware.node.NodeSpec`.  NIC-in and NIC-out are
separate because the 1 Gb/s links of the paper's testbed are full duplex:
a Beefy node can saturate ingestion while still sending its own partitions
(the key effect behind Figures 10(b) and 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec

__all__ = ["Resource", "ResourcePool", "cpu", "disk", "nic_in", "nic_out"]

CPU = "cpu"
DISK = "disk"
NIC_IN = "nic_in"
NIC_OUT = "nic_out"
NETWORK_KINDS = frozenset({NIC_IN, NIC_OUT})


def cpu(node_id: int) -> str:
    """Resource name for a node's CPU."""
    return f"{CPU}:{node_id}"


def disk(node_id: int) -> str:
    """Resource name for a node's storage subsystem."""
    return f"{DISK}:{node_id}"


def nic_in(node_id: int) -> str:
    """Resource name for a node's inbound network link."""
    return f"{NIC_IN}:{node_id}"


def nic_out(node_id: int) -> str:
    """Resource name for a node's outbound network link."""
    return f"{NIC_OUT}:{node_id}"


@dataclass(frozen=True)
class Resource:
    """One shared rate-capacity resource."""

    name: str
    capacity_mbps: float
    kind: str
    node_id: int

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ConfigurationError(
                f"resource {self.name!r} must have positive capacity, "
                f"got {self.capacity_mbps}"
            )


class ResourcePool:
    """All resources of a cluster, indexed by name."""

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster
        self._specs: list[NodeSpec] = []
        self._roles: list[str] = []
        self._resources: dict[str, Resource] = {}
        for node_id, (spec, role) in enumerate(cluster.nodes()):
            self._specs.append(spec)
            self._roles.append(role)
            for kind, capacity in (
                (CPU, spec.cpu_bandwidth_mbps),
                (DISK, spec.disk_bandwidth_mbps),
                (NIC_IN, spec.nic_bandwidth_mbps),
                (NIC_OUT, spec.nic_bandwidth_mbps),
            ):
                name = f"{kind}:{node_id}"
                self._resources[name] = Resource(
                    name=name, capacity_mbps=capacity, kind=kind, node_id=node_id
                )

    @property
    def num_nodes(self) -> int:
        return len(self._specs)

    def node_spec(self, node_id: int) -> NodeSpec:
        return self._specs[node_id]

    def node_role(self, node_id: int) -> str:
        return self._roles[node_id]

    def node_ids(self) -> range:
        return range(len(self._specs))

    def capacities(self) -> dict[str, float]:
        """Name -> capacity map (fresh dict; callers may mutate their copy)."""
        return {name: res.capacity_mbps for name, res in self._resources.items()}

    def resource(self, name: str) -> Resource:
        try:
            return self._resources[name]
        except KeyError:
            raise ConfigurationError(f"unknown resource {name!r}") from None

    def is_network(self, name: str) -> bool:
        return self._resources[name].kind in NETWORK_KINDS

    def __contains__(self, name: str) -> bool:
        return name in self._resources

    def __len__(self) -> int:
        return len(self._resources)
