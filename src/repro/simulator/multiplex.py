"""Event-multiplexed fluid simulation: N independent runs, one loop.

:func:`run_multiplexed` advances many *lanes* — each a full
(:class:`~repro.simulator.engine.ClusterSimulator`, jobs) simulation with
its own cluster — together.  Every global iteration moves each active lane
to its own next event, so the per-event arithmetic that dominates serial
replay (max-min fair allocation, remaining-volume decrements, power/energy
integration) batches into numpy kernels across lanes instead of running
once per lane per event in Python.

Bit-identity contract
---------------------
Each lane's :class:`~repro.simulator.engine.SimulationResult` is
bit-identical to running its simulator's serial ``run()`` alone: the
vectorized kernels perform the same elementwise float64 operations in the
same order as the scalar code (``np.bincount`` accumulates weights in
input order, matching the scalar load-dict accumulation; ``np.clip``
equals the scalar ``clamp``; power-model evaluation stays scalar Python,
where exponentiation is bit-exact), and the per-lane control flow —
admission, idle gaps, phase barriers, flow retirement — replicates the
scalar event loop statement for statement.  The serial engine is the
*oracle*; ``tests/simulator/test_multiplex.py`` property-tests the
equivalence.

Two further consequences of lane independence: results do not depend on
how lanes are grouped into batches (multiplexing ``[a, b, c]`` equals
``[a]`` then ``[b, c]``), and a lane that records intervals can ride the
same entry point (it is routed to a per-lane loop that obtains bottleneck
bindings from the scalar allocator).

Flat state layout
-----------------
Interval-free lanes — the design-search workload — keep *no* per-lane
flow objects at all.  Every live flow of every lane lives in global flat
arrays, lane-contiguous and in the scalar engine's live-list order
(survivors first, admissions appended): per-flow remaining volume,
completion floor, owning lane/job, and per-demand-entry (resource,
coefficient) rows whose resource ids are pre-offset into one global
block-diagonal id space.  One allocator call
(:func:`~repro.simulator.allocation.max_min_fair_rates_flat`), one
per-node CPU-rate ``bincount``, one vectorized utilization pass, and one
retirement gather then serve *all* lanes per iteration; only admissions,
idle gaps, phase barriers, and the (memoized) utilization->watts map
remain scalar, and each touches a handful of lanes or nodes per event.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.hardware.power import MIN_UTILIZATION
from repro.simulator.allocation import (
    _EPSILON,
    max_min_fair_allocation,
    max_min_fair_rates_flat,
)
from repro.simulator.engine import (
    _COMPLETION_EPS,
    ClusterSimulator,
    Interval,
    SimulationResult,
)
from repro.simulator.jobs import FlowSpec, Job
from repro.simulator.resources import CPU, DISK, NETWORK_KINDS, NIC_IN, NIC_OUT
from repro.telemetry import get_telemetry

__all__ = ["run_multiplexed"]

#: local resource id = node_id * 4 + offset — the insertion order of
#: :meth:`~repro.simulator.resources.ResourcePool.capacities`.
_KIND_OFFSET = {CPU: 0, DISK: 1, NIC_IN: 2, NIC_OUT: 3}

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_F64 = np.zeros(0)
_EMPTY_BOOL = np.zeros(0, dtype=bool)


class _Template:
    """Precomputed array form of one distinct :class:`FlowSpec`."""

    __slots__ = ("spec", "volume_mb", "floor", "res_idx", "coef", "has_network")

    def __init__(self, spec: FlowSpec):
        self.spec = spec
        self.volume_mb = spec.volume_mb
        self.floor = _COMPLETION_EPS * max(1.0, spec.volume_mb)
        res_idx: list[int] = []
        coef: list[float] = []
        has_network = False
        for resource, c in spec.demands.items():
            kind, _, node = resource.partition(":")
            res_idx.append(int(node) * 4 + _KIND_OFFSET[kind])
            coef.append(c)
            if kind in NETWORK_KINDS:
                has_network = True
        self.res_idx = np.array(res_idx, dtype=np.int64)
        self.coef = np.array(coef)
        self.has_network = has_network


class _State:
    """Memoized allocation outcome for one live-template composition."""

    __slots__ = ("rates", "powers", "utils", "bindings")

    def __init__(self, rates, powers, utils, bindings=None):
        self.rates = rates
        self.powers = powers
        self.utils = utils
        self.bindings = bindings


class _Lane:
    """Per-run simulation state, mirroring the scalar engine's locals.

    Interval-free lanes use only the scalar-control-flow half (admission
    order, phase barriers, job bookkeeping, template interning) — their
    flow state lives in :func:`_run_flat`'s global arrays.  Recording
    lanes additionally keep per-lane live arrays for the interval path.
    """

    __slots__ = (
        "index",
        "sim",
        "pool",
        "jobs",
        "record",
        "n_nodes",
        "base_caps",
        "net_mask",
        "node_specs",
        "order",
        "starts",
        "cursor",
        "job_phase",
        "phase_live_count",
        "job_start",
        "job_completion",
        "live_tid",
        "live_job",
        "entry_idx",
        "entry_counts",
        "pend_tids",
        "pend_jobs",
        "keep",
        "appended",
        "n_net",
        "events",
        "intervals",
        "eview",
        "state_memo",
        "power_memo",
        "caps_memo",
        "eff_memo",
        "_intern_by_id",
        "_intern_by_value",
        "_phase_memo",
        "templates",
        "_uni_size",
        "_uni_res",
        "_uni_coef",
        "_uni_is_cpu",
        "_entry_ranges",
        "_tpl_entry_counts",
        "_tpl_volume",
        "_tpl_floor",
        "_tpl_has_net",
        "state",
        "dirty",
    )

    def __init__(
        self,
        index: int,
        simulator: ClusterSimulator,
        jobs: Sequence[Job],
        template_cache: dict | None = None,
    ):
        self._validate(simulator, jobs)
        self.index = index
        self.sim = simulator
        self.pool = simulator.pool
        self.jobs = list(jobs)
        self.record = simulator.record_intervals
        self.n_nodes = self.pool.num_nodes
        self.base_caps = np.array(list(self.pool.capacities().values()))
        net = np.zeros(self.base_caps.shape[0], dtype=bool)
        net[_KIND_OFFSET[NIC_IN] :: 4] = True
        net[_KIND_OFFSET[NIC_OUT] :: 4] = True
        self.net_mask = net
        self.node_specs = [self.pool.node_spec(n) for n in self.pool.node_ids()]
        self.order = sorted(
            range(len(self.jobs)), key=lambda i: self.jobs[i].start_time_s
        )
        self.starts = [self.jobs[i].start_time_s for i in self.order]
        self.cursor = 0
        self.job_phase: list = [0] * len(self.jobs)
        self.phase_live_count = [0] * len(self.jobs)
        self.job_start: dict[str, float] = {}
        self.job_completion: dict[str, float] = {}
        self.live_tid = _EMPTY_I64
        self.live_job = _EMPTY_I64
        self.entry_idx = _EMPTY_I64
        self.entry_counts = _EMPTY_I64
        #: admissions not yet merged into the live arrays (flushed before
        #: the next allocation)
        self.pend_tids: list[int] = []
        self.pend_jobs: list[int] = []
        #: surviving positions of the last retirement, relative to the
        #: matrix row laid down by the previous rebuild (None = no
        #: retirement since then)
        self.keep: np.ndarray | None = None
        #: template ids appended by the last flush (for row initialisation)
        self.appended: np.ndarray | None = None
        self.n_net = 0
        self.events = 0
        self.intervals: list[Interval] = []
        #: flat lanes: view into the global node-energy array
        self.eview: np.ndarray | None = None
        self.state_memo: dict[bytes, _State] = {}
        self.power_memo: dict = {}
        self.caps_memo: dict[int, np.ndarray] = {}
        self.eff_memo: dict[int, float] = {}
        self._intern_by_id: dict[int, tuple[_Template, int]] = {}
        #: value-keyed template cache, shared across one batch's lanes
        #: (candidates of the same cluster size expand a trace into
        #: value-identical FlowSpecs)
        self._intern_by_value: dict[tuple, _Template] = (
            {} if template_cache is None else template_cache
        )
        self._phase_memo: dict[int, tuple[list[int], int]] = {}
        self.templates: list[_Template] = []
        self._uni_size = 0
        self.state: _State | None = None
        self.dirty = True

    @staticmethod
    def _validate(simulator: ClusterSimulator, jobs: Sequence[Job]) -> None:
        """The scalar engine's job validation, deduplicated by spec.

        Jobs replayed from a trace share :class:`FlowSpec` objects, so
        each distinct spec is checked against the pool once instead of
        once per job — same verdicts as ``ClusterSimulator._validate``.
        """
        if not jobs:
            raise SimulationError("no jobs to run")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate job names: {names}")
        seen: set[int] = set()
        for job in jobs:
            for phase in job.phases:
                for flow in phase.flows:
                    if id(flow) in seen:
                        continue
                    seen.add(id(flow))
                    for resource in flow.demands:
                        if resource not in simulator.pool:
                            raise SimulationError(
                                f"job {job.name!r} flow {flow.name!r} references "
                                f"unknown resource {resource!r}"
                            )

    # ------------------------------------------------------------- templates
    def _intern(self, spec: FlowSpec) -> tuple[_Template, int]:
        hit = self._intern_by_id.get(id(spec))
        if hit is not None:
            return hit
        value_key = (spec.name, spec.volume_mb, tuple(spec.demands.items()))
        template = self._intern_by_value.get(value_key)
        if template is None:
            template = self._intern_by_value[value_key] = _Template(spec)
        hit = (template, len(self.templates))
        self.templates.append(template)
        self._intern_by_id[id(spec)] = hit
        return hit

    def _ensure_universe(self) -> None:
        """(Re)build the per-lane concatenation of all template entries.

        Gathering a live set's demand system out of these flat arrays
        replaces per-flow array construction; rebuilt only when a new
        template appears (a handful of times per lane)."""
        if self._uni_size == len(self.templates):
            return
        self._uni_res = np.concatenate([t.res_idx for t in self.templates])
        self._uni_coef = np.concatenate([t.coef for t in self.templates])
        self._uni_is_cpu = self._uni_res % 4 == _KIND_OFFSET[CPU]
        counts = [t.res_idx.shape[0] for t in self.templates]
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._entry_ranges = [
            np.arange(offsets[i], offsets[i + 1], dtype=np.int64)
            for i in range(len(counts))
        ]
        self._tpl_entry_counts = np.array(counts, dtype=np.int64)
        self._tpl_volume = np.array([t.volume_mb for t in self.templates])
        self._tpl_floor = np.array([t.floor for t in self.templates])
        self._tpl_has_net = np.array(
            [t.has_network for t in self.templates], dtype=bool
        )
        self._uni_size = len(self.templates)

    # ---------------------------------------------------- scalar control flow
    def _advance_job(self, job_index: int, start_phase: int, t) -> None:
        phase_index = start_phase
        while True:
            if phase_index >= len(self.jobs[job_index].phases):
                self.job_completion[self.jobs[job_index].name] = float(t)
                self.job_phase[job_index] = None
                return
            self._admit_phase(job_index, phase_index)
            if self.phase_live_count[job_index] > 0:
                return
            phase_index += 1

    def _admit_phase(self, job_index: int, phase_index: int) -> None:
        self.job_phase[job_index] = phase_index
        phase = self.jobs[job_index].phases[phase_index]
        memo = self._phase_memo.get(id(phase))
        if memo is None:
            tids: list[int] = []
            net = 0
            for flow in phase.flows:
                if flow.volume_mb > 0:
                    template, tid = self._intern(flow)
                    tids.append(tid)
                    if template.has_network:
                        net += 1
            memo = (tids, net)
            self._phase_memo[id(phase)] = memo
        tids, net = memo
        self.pend_tids.extend(tids)
        self.pend_jobs.extend([job_index] * len(tids))
        self.n_net += net
        self.phase_live_count[job_index] = len(tids)
        self.dirty = True

    def has_live(self) -> bool:
        return bool(self.live_tid.size) or bool(self.pend_tids)

    def advance_flat(
        self, t: float, events: int, live_count: int, max_events: int
    ) -> tuple[float, int, bool]:
        """The scalar loop's head for flat-batch lanes.

        Admissions, idle gaps, and event counting, mirroring the serial
        engine's per-iteration order; flow state lives in the caller's
        global arrays, so liveness arrives as ``live_count``.  Returns
        ``(time, events, alive)`` — ``alive`` False once the lane has no
        live flows and no arrivals left.
        """
        starts = self.starts
        n_jobs = len(starts)
        while True:
            if live_count == 0 and not self.pend_tids and self.cursor >= n_jobs:
                return t, events, False
            events += 1
            if events > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; simulation stalled?"
                )
            while self.cursor < n_jobs and starts[self.cursor] <= t + _COMPLETION_EPS:
                index = self.order[self.cursor]
                self.cursor += 1
                job = self.jobs[index]
                self.job_start[job.name] = max(t, job.start_time_s)
                self._advance_job(index, 0, t)
            if live_count or self.pend_tids:
                return t, events, True
            if self.cursor < n_jobs:
                next_start = starts[self.cursor]
                gap = next_start - t
                if gap > 0:
                    self.eview += self._idle_state().powers * gap
                t = next_start
            # else: no live flows, nothing pending — finished (top of loop)

    def advance(self, time_arr, e_matrix, max_events: int) -> bool:
        """The scalar loop's head for recording lanes (matrix path)."""
        lane_id = self.index
        while True:
            if not self.has_live() and self.cursor >= len(self.order):
                return False
            self.events += 1
            if self.events > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; simulation stalled?"
                )
            t = time_arr[lane_id]
            while (
                self.cursor < len(self.order)
                and self.starts[self.cursor] <= t + _COMPLETION_EPS
            ):
                index = self.order[self.cursor]
                self.cursor += 1
                job = self.jobs[index]
                self.job_start[job.name] = max(float(t), job.start_time_s)
                self._advance_job(index, 0, t)
            if self.has_live():
                return True
            if self.cursor < len(self.order):
                next_start = self.starts[self.cursor]
                gap = next_start - t
                self._integrate_idle(t, gap, e_matrix)
                time_arr[lane_id] = next_start
                continue
            # no live flows, nothing pending: finished (detected at the top)

    # ------------------------------------------------------------ allocation
    def _idle_state(self) -> _State:
        state = self.state_memo.get(b"")
        if state is None:
            state = self._finish_state(b"", np.zeros(0), bindings=())
        return state

    def _integrate_idle(self, t, gap, e_matrix) -> None:
        if gap <= 0:
            return
        state = self._idle_state()
        e_matrix[self.index, : self.n_nodes] += state.powers * gap
        if self.record:
            self.intervals.append(
                Interval(
                    start_s=float(t),
                    end_s=float(t + gap),
                    node_utilization=tuple(state.utils),
                    node_power_w=tuple(state.powers.tolist()),
                    flow_names=(),
                    flow_bindings=(),
                    flow_jobs=(),
                )
            )

    def flush(self) -> None:
        """Merge buffered admissions into the live arrays (append order)."""
        if not self.pend_tids:
            self.appended = None
            return
        self._ensure_universe()
        new = np.array(self.pend_tids, dtype=np.int64)
        self.live_tid = np.concatenate([self.live_tid, new])
        self.live_job = np.concatenate(
            [self.live_job, np.array(self.pend_jobs, dtype=np.int64)]
        )
        self.entry_idx = np.concatenate(
            [self.entry_idx] + [self._entry_ranges[t] for t in self.pend_tids]
        )
        self.entry_counts = np.concatenate(
            [self.entry_counts, self._tpl_entry_counts[new]]
        )
        self.appended = new
        self.pend_tids = []
        self.pend_jobs = []

    def state_key(self) -> bytes:
        return self.live_tid.tobytes()

    def allocate_scalar(self) -> _State:
        """Scalar-allocator path (interval-recording lanes need bindings)."""
        capacities = self.pool.capacities()
        efficiency = self.sim.switch.efficiency(self.n_net)
        if efficiency < 1.0:
            for name in capacities:
                if self.pool.is_network(name):
                    capacities[name] *= efficiency
        rates, bindings = max_min_fair_allocation(
            [self.templates[t].spec.demands for t in self.live_tid.tolist()],
            capacities,
        )
        return self._finish_state(
            self.state_key(), np.array(rates), bindings=bindings
        )

    def _finish_state(self, key: bytes, rates, bindings=None) -> _State:
        """Derive per-node powers from rates, memoize, and return."""
        cpu_rates = self._cpu_rates(rates)
        n = self.n_nodes
        utils = [0.0] * n
        powers = np.empty(n)
        memo = self.power_memo
        specs = self.node_specs
        for node_id, cpu_rate in enumerate(cpu_rates):
            hit = memo.get((node_id, cpu_rate))
            if hit is None:
                spec = specs[node_id]
                util = spec.utilization(cpu_rate)
                watts = spec.power_model.power(util)
                hit = (util, watts)
                memo[(node_id, cpu_rate)] = hit
            utils[node_id] = hit[0]
            powers[node_id] = hit[1]
        state = _State(
            rates=np.asarray(rates),
            powers=powers,
            utils=utils,
            bindings=bindings,
        )
        self.state_memo[key] = state
        return state

    def _cpu_rates(self, rates) -> list[float]:
        """Per-node CPU demand, accumulated in the scalar engine's order
        (flow-major, demand-insertion order within each flow)."""
        idx = self.entry_idx
        if idx.size == 0:
            return [0.0] * self.n_nodes
        mask = self._uni_is_cpu[idx]
        cpu_idx = idx[mask]
        if cpu_idx.size == 0:
            return [0.0] * self.n_nodes
        rate_rep = np.repeat(np.asarray(rates), self.entry_counts)
        weights = self._uni_coef[cpu_idx] * rate_rep[mask]
        return np.bincount(
            self._uni_res[cpu_idx] >> 2, weights=weights, minlength=self.n_nodes
        ).tolist()

    # ------------------------------------------------------------ transitions
    def after_step(self, dt, pre_t, now_t, done_row) -> None:
        """The scalar loop's tail: record the interval, retire finished
        flows, release phase barriers."""
        if self.record and dt > 0:
            state = self.state
            tids = self.live_tid.tolist()
            self.intervals.append(
                Interval(
                    start_s=float(pre_t),
                    end_s=float(pre_t + dt),
                    node_utilization=tuple(state.utils),
                    node_power_w=tuple(state.powers.tolist()),
                    flow_names=tuple(self.templates[t].spec.name for t in tids),
                    flow_bindings=tuple(state.bindings),
                    flow_jobs=tuple(
                        self.jobs[j].name for j in self.live_job.tolist()
                    ),
                )
            )
        done_k = done_row[: self.live_tid.size]
        if not done_k.any():
            return
        keep = ~done_k
        finished_jobs = self.live_job[done_k].tolist()
        self.n_net -= int(self._tpl_has_net[self.live_tid[done_k]].sum())
        self.live_tid = self.live_tid[keep]
        self.live_job = self.live_job[keep]
        self.entry_idx = self.entry_idx[np.repeat(keep, self.entry_counts)]
        self.entry_counts = self.entry_counts[keep]
        self.keep = keep
        self.dirty = True
        for index in finished_jobs:
            self.phase_live_count[index] -= 1
        for index in sorted(set(finished_jobs)):
            if self.phase_live_count[index] == 0 and self.job_phase[index] is not None:
                self._advance_job(index, self.job_phase[index] + 1, now_t)

    def rebuild_row(self, rate_m, rem_m, floor_m, power_m) -> None:
        """Refresh this lane's matrix rows after a live-set change.

        Surviving flows carry their decremented volumes over from the old
        row (gathered by position); appended flows start at their
        template volume."""
        row = self.index
        k = self.live_tid.size
        n_new = 0 if self.appended is None else self.appended.size
        survivors = k - n_new
        if self.keep is not None:
            old_rem = rem_m[row, : self.keep.size][self.keep]
            old_floor = floor_m[row, : self.keep.size][self.keep]
        else:
            old_rem = rem_m[row, :survivors].copy()
            old_floor = floor_m[row, :survivors].copy()
        rem_m[row] = np.inf
        rem_m[row, :survivors] = old_rem
        floor_m[row] = -np.inf
        floor_m[row, :survivors] = old_floor
        if n_new:
            rem_m[row, survivors:k] = self._tpl_volume[self.appended]
            floor_m[row, survivors:k] = self._tpl_floor[self.appended]
        rate_m[row] = 0.0
        rate_m[row, :k] = self.state.rates
        power_m[row, : self.n_nodes] = self.state.powers
        self.keep = None
        self.appended = None
        self.dirty = False

    def finalize(self, time_arr, e_matrix) -> SimulationResult:
        node_energy = e_matrix[self.index, : self.n_nodes].tolist()
        return SimulationResult(
            makespan_s=float(time_arr[self.index]),
            energy_j=sum(node_energy),
            node_energy_j=tuple(node_energy),
            job_start_s=self.job_start,
            job_completion_s=self.job_completion,
            intervals=self.intervals,
        )


def run_multiplexed(
    runs: Sequence[tuple[ClusterSimulator, Sequence[Job]]],
    max_events: int = 1_000_000,
) -> list[SimulationResult]:
    """Advance every (simulator, jobs) run on one multiplexed event loop.

    Returns one :class:`SimulationResult` per run, in order, each
    bit-identical to ``simulator.run(jobs, max_events=max_events)`` run
    serially (see the module docstring for why).  Raises
    :class:`~repro.errors.SimulationError` as soon as *any* lane would —
    callers needing per-run error isolation should fall back to serial
    replay of the offending runs.

    Interval-free runs take the flat-array fast path; runs whose
    simulator records intervals take a per-lane loop (the scalar
    allocator supplies their bottleneck bindings).  Lane independence
    makes the partition invisible in the results.
    """
    if not runs:
        return []
    template_cache: dict = {}
    flat: list[tuple[int, _Lane]] = []
    recorded: list[tuple[int, _Lane]] = []
    for position, (sim, jobs) in enumerate(runs):
        group = recorded if sim.record_intervals else flat
        group.append(
            (position, _Lane(len(group), sim, jobs, template_cache))
        )
    results: list[SimulationResult | None] = [None] * len(runs)
    if flat:
        for (position, _), result in zip(
            flat, _run_flat([lane for _, lane in flat], max_events)
        ):
            results[position] = result
    if recorded:
        for (position, _), result in zip(
            recorded, _run_recorded([lane for _, lane in recorded], max_events)
        ):
            results[position] = result
    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.count("sim.multiplex.runs")
        telemetry.count("sim.multiplex.lanes", len(runs))
    return results  # type: ignore[return-value]


def _run_flat(
    lanes: list[_Lane], max_events: int
) -> list[SimulationResult]:
    """Flat-array event loop for interval-free lanes.

    All per-flow and per-demand-entry state is global (lane-contiguous,
    scalar live-list order within each lane); every iteration performs a
    fixed number of whole-array operations plus scalar work proportional
    to the handful of lanes admitting jobs or flows retiring.
    """
    n_lanes = len(lanes)
    n_nodes_arr = np.array([lane.n_nodes for lane in lanes], dtype=np.int64)
    node_off = np.zeros(n_lanes + 1, dtype=np.int64)
    np.cumsum(n_nodes_arr, out=node_off[1:])
    total_nodes = int(node_off[-1])
    res_counts = np.array(
        [lane.base_caps.shape[0] for lane in lanes], dtype=np.int64
    )
    res_off = np.zeros(n_lanes + 1, dtype=np.int64)
    np.cumsum(res_counts, out=res_off[1:])
    lane_of_res = np.repeat(np.arange(n_lanes), res_counts)
    #: global resource id = lane block offset + node*4 + kind; node id
    #: recovery via ``>> 2`` needs every block offset to be a node multiple
    caps = np.concatenate([lane.base_caps for lane in lanes])
    sat = _EPSILON * np.maximum(1.0, caps)

    node_energy = np.zeros(total_nodes)
    node_power = np.zeros(total_nodes)
    node_util = np.full(total_nodes, np.nan)
    node_cpu_prev = np.full(total_nodes, np.nan)

    # per-node power-model dispatch: one memo dict per distinct model
    node_models = []
    node_memo: list[dict] = []
    model_dicts: dict[int, dict] = {}
    util_groups: dict[tuple, list[int]] = {}
    for lane in lanes:
        for spec in lane.node_specs:
            model = spec.power_model
            memo = model_dicts.get(id(model))
            if memo is None:
                memo = model_dicts[id(model)] = {}
            node_models.append(model)
            node_memo.append(memo)
            util_groups.setdefault(
                (spec.engine_base_utilization, spec.cpu_bandwidth_mbps), []
            ).append(len(node_models) - 1)
    u_groups = [
        (np.array(idxs, dtype=np.int64), base, bw)
        for (base, bw), idxs in util_groups.items()
    ]

    for l, lane in enumerate(lanes):
        lane.eview = node_energy[node_off[l] : node_off[l + 1]]

    nnet = [0] * n_lanes
    eff = [1.0] * n_lanes

    def update_eff(l: int, n: int) -> None:
        lane = lanes[l]
        e = lane.eff_memo.get(n)
        if e is None:
            e = lane.eff_memo[n] = lane.sim.switch.efficiency(n)
        if e != eff[l]:
            eff[l] = e
            block = lane.base_caps
            if e < 1.0:
                block = block.copy()
                block[lane.net_mask] *= e
            caps[res_off[l] : res_off[l + 1]] = block
            sat[res_off[l] : res_off[l + 1]] = _EPSILON * np.maximum(1.0, block)

    for l in range(n_lanes):
        update_eff(l, 0)

    # global flow/entry state (lane-contiguous, scalar live-list order)
    f_lane = _EMPTY_I64
    f_job = _EMPTY_I64
    f_net = _EMPTY_BOOL
    f_rem = _EMPTY_F64
    f_floor = _EMPTY_F64
    f_ecount = _EMPTY_I64
    e_res = _EMPTY_I64
    e_coef = _EMPTY_F64
    e_iscpu = _EMPTY_BOOL

    time_arr = np.zeros(n_lanes)
    events = np.zeros(n_lanes, dtype=np.int64)
    flow_count = np.zeros(n_lanes, dtype=np.int64)
    entry_total = np.zeros(n_lanes, dtype=np.int64)
    next_start = np.full(n_lanes, np.inf)
    has_pend = np.zeros(n_lanes, dtype=bool)
    active = np.ones(n_lanes, dtype=bool)
    attention = np.ones(n_lanes, dtype=bool)
    lane_ids = np.arange(n_lanes)

    # Telemetry accumulates in locals (two int adds per global iteration,
    # nothing per flow) and flushes once after the loop.
    iterations = 0
    flow_steps = 0

    while True:
        # -- phase A: admissions, idle gaps, completion (scalar loop head)
        att = np.nonzero(attention & active)[0]
        for l in att.tolist():
            lane = lanes[l]
            t, ev, alive = lane.advance_flat(
                float(time_arr[l]), int(events[l]), int(flow_count[l]), max_events
            )
            time_arr[l] = t
            events[l] = ev
            if alive:
                if lane.pend_tids:
                    has_pend[l] = True
            else:
                active[l] = False
            next_start[l] = (
                lane.starts[lane.cursor]
                if lane.cursor < len(lane.starts)
                else np.inf
            )
        if not active.any():
            break

        # -- phase B: merge buffered admissions into the global arrays
        if has_pend.any():
            adds: list[tuple] = []
            add_flows = np.zeros(n_lanes, dtype=np.int64)
            add_entries = np.zeros(n_lanes, dtype=np.int64)
            for l in np.nonzero(has_pend)[0].tolist():
                lane = lanes[l]
                lane._ensure_universe()
                tids = np.array(lane.pend_tids, dtype=np.int64)
                entry_sel = np.concatenate(
                    [lane._entry_ranges[t] for t in lane.pend_tids]
                )
                adds.append(
                    (
                        l,
                        np.array(lane.pend_jobs, dtype=np.int64),
                        lane._tpl_has_net[tids],
                        lane._tpl_volume[tids],
                        lane._tpl_floor[tids],
                        lane._tpl_entry_counts[tids],
                        lane._uni_res[entry_sel] + res_off[l],
                        lane._uni_coef[entry_sel],
                        lane._uni_is_cpu[entry_sel],
                    )
                )
                add_flows[l] = tids.size
                add_entries[l] = entry_sel.size
                if lane.n_net:
                    nnet[l] += lane.n_net
                    lane.n_net = 0
                    update_eff(l, nnet[l])
                lane.pend_tids = []
                lane.pend_jobs = []
            old_foff = np.zeros(n_lanes + 1, dtype=np.int64)
            np.cumsum(flow_count, out=old_foff[1:])
            old_eoff = np.zeros(n_lanes + 1, dtype=np.int64)
            np.cumsum(entry_total, out=old_eoff[1:])
            flow_count += add_flows
            entry_total += add_entries
            new_foff = np.zeros(n_lanes + 1, dtype=np.int64)
            np.cumsum(flow_count, out=new_foff[1:])
            new_eoff = np.zeros(n_lanes + 1, dtype=np.int64)
            np.cumsum(entry_total, out=new_eoff[1:])
            # surviving flows shift right by the admissions of lanes
            # before them; appended flows land at their lane's tail
            dst_old_f = np.arange(old_foff[-1]) + np.repeat(
                new_foff[:-1] - old_foff[:-1], old_foff[1:] - old_foff[:-1]
            )
            dst_old_e = np.arange(old_eoff[-1]) + np.repeat(
                new_eoff[:-1] - old_eoff[:-1], old_eoff[1:] - old_eoff[:-1]
            )
            dst_new_f = np.concatenate(
                [
                    new_foff[a[0]] + old_foff[a[0] + 1] - old_foff[a[0]]
                    + np.arange(a[1].size)
                    for a in adds
                ]
            )
            dst_new_e = np.concatenate(
                [
                    new_eoff[a[0]] + old_eoff[a[0] + 1] - old_eoff[a[0]]
                    + np.arange(a[6].size)
                    for a in adds
                ]
            )

            def _splice(old, pieces, dst_old, dst_new, total, dtype):
                out = np.empty(total, dtype=dtype)
                out[dst_old] = old
                out[dst_new] = np.concatenate(pieces)
                return out

            nf = int(new_foff[-1])
            ne = int(new_eoff[-1])
            f_lane = np.repeat(lane_ids, flow_count)
            f_job = _splice(f_job, [a[1] for a in adds], dst_old_f, dst_new_f, nf, np.int64)
            f_net = _splice(f_net, [a[2] for a in adds], dst_old_f, dst_new_f, nf, bool)
            f_rem = _splice(f_rem, [a[3] for a in adds], dst_old_f, dst_new_f, nf, np.float64)
            f_floor = _splice(f_floor, [a[4] for a in adds], dst_old_f, dst_new_f, nf, np.float64)
            f_ecount = _splice(f_ecount, [a[5] for a in adds], dst_old_f, dst_new_f, nf, np.int64)
            e_res = _splice(e_res, [a[6] for a in adds], dst_old_e, dst_new_e, ne, np.int64)
            e_coef = _splice(e_coef, [a[7] for a in adds], dst_old_e, dst_new_e, ne, np.float64)
            e_iscpu = _splice(e_iscpu, [a[8] for a in adds], dst_old_e, dst_new_e, ne, bool)
            has_pend[:] = False

        # -- event accounting (attention lanes counted in advance_flat)
        sl = np.nonzero(flow_count)[0]
        bump = np.zeros(n_lanes, dtype=bool)
        bump[sl] = True
        bump &= ~attention
        events[bump] += 1
        if (events[sl] > max_events).any():
            raise SimulationError(
                f"exceeded {max_events} events; simulation stalled?"
            )
        attention[:] = False

        # -- phase C: one max-min fair allocation across every lane
        n_flows = f_rem.shape[0]
        iterations += 1
        flow_steps += n_flows
        entry_flow = np.repeat(np.arange(n_flows, dtype=np.int64), f_ecount)
        rates = max_min_fair_rates_flat(
            entry_flow,
            e_res,
            e_coef,
            f_lane,
            lane_of_res,
            res_off,
            caps,
            sat,
            n_flows,
            n_lanes,
        )

        # -- phase D: per-node CPU rates -> utilization -> watts
        entry_rate = rates[entry_flow]
        node_cpu = np.bincount(
            e_res[e_iscpu] >> 2,
            weights=e_coef[e_iscpu] * entry_rate[e_iscpu],
            minlength=total_nodes,
        )
        cpu_changed = node_cpu != node_cpu_prev
        if cpu_changed.any():
            util = node_util.copy()
            for idxs, base, bw in u_groups:
                util[idxs] = np.clip(
                    base + node_cpu[idxs] / bw, MIN_UTILIZATION, 1.0
                )
            changed = util != node_util
            if changed.any():
                watt_idx = np.nonzero(changed)[0].tolist()
                watt_vals = util[changed].tolist()
                watts = [0.0] * len(watt_idx)
                for k, (i, u) in enumerate(zip(watt_idx, watt_vals)):
                    memo = node_memo[i]
                    w = memo.get(u)
                    if w is None:
                        w = memo[u] = node_models[i].power(u)
                    watts[k] = w
                node_power[changed] = watts
                node_util = util
            node_cpu_prev = node_cpu

        # -- phase E: advance every lane to its own next event
        flow_off = np.zeros(n_lanes + 1, dtype=np.int64)
        np.cumsum(flow_count, out=flow_off[1:])
        ratio = np.divide(
            f_rem, rates, out=np.full(n_flows, np.inf), where=rates > 0
        )
        dt = np.minimum.reduceat(ratio, flow_off[sl])
        dt = np.minimum(dt, next_start[sl] - time_arr[sl])
        if (~np.isfinite(dt) | (dt < 0)).any():
            raise SimulationError(
                "simulation stalled: live flows have zero rate and no "
                "pending events"
            )
        time_arr[sl] += dt
        if sl.size == n_lanes:
            node_energy += node_power * np.repeat(dt, n_nodes_arr)
        else:
            lmask = np.zeros(n_lanes, dtype=bool)
            lmask[sl] = True
            nmask = np.repeat(lmask, n_nodes_arr)
            node_energy[nmask] += node_power[nmask] * np.repeat(
                dt, n_nodes_arr[sl]
            )
        f_rem = f_rem - rates * np.repeat(dt, flow_count[sl])
        done = f_rem <= f_floor

        # -- phase F: retirement and phase barriers (scalar tail)
        if done.any():
            ret_lane = f_lane[done]
            ret_job = f_job[done]
            net_dec = np.bincount(f_lane[done & f_net], minlength=n_lanes)
            entry_total = entry_total - np.bincount(
                ret_lane, weights=f_ecount[done].astype(np.float64),
                minlength=n_lanes,
            ).astype(np.int64)
            flow_count = flow_count - np.bincount(ret_lane, minlength=n_lanes)
            keep = ~done
            ekeep = np.repeat(keep, f_ecount)
            f_lane = f_lane[keep]
            f_job = f_job[keep]
            f_net = f_net[keep]
            f_rem = f_rem[keep]
            f_floor = f_floor[keep]
            f_ecount = f_ecount[keep]
            e_res = e_res[ekeep]
            e_coef = e_coef[ekeep]
            e_iscpu = e_iscpu[ekeep]
            if net_dec.any():
                for l in np.nonzero(net_dec)[0].tolist():
                    nnet[l] -= int(net_dec[l])
                    update_eff(l, nnet[l])
            by_lane: dict[int, set] = {}
            for l, j in zip(ret_lane.tolist(), ret_job.tolist()):
                lanes[l].phase_live_count[j] -= 1
                jobs_done = by_lane.get(l)
                if jobs_done is None:
                    by_lane[l] = jobs_done = set()
                jobs_done.add(j)
            for l, jobs_done in by_lane.items():
                lane = lanes[l]
                t = float(time_arr[l])
                for j in sorted(jobs_done):
                    if (
                        lane.phase_live_count[j] == 0
                        and lane.job_phase[j] is not None
                    ):
                        lane._advance_job(j, lane.job_phase[j] + 1, t)
                if lane.pend_tids:
                    has_pend[l] = True

        attention = active & (
            ((flow_count == 0) & ~has_pend)
            | (next_start <= time_arr + _COMPLETION_EPS)
        )

    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.count("sim.multiplex.iterations", iterations)
        telemetry.count("sim.multiplex.flow_steps", flow_steps)
        telemetry.count("sim.events", int(events.sum()))
    return [
        SimulationResult(
            makespan_s=float(time_arr[l]),
            energy_j=sum(energy_slice),
            node_energy_j=tuple(energy_slice),
            job_start_s=lane.job_start,
            job_completion_s=lane.job_completion,
            intervals=lane.intervals,
        )
        for l, lane in enumerate(lanes)
        for energy_slice in [node_energy[node_off[l] : node_off[l + 1]].tolist()]
    ]


def _run_recorded(
    lanes: list[_Lane], max_events: int
) -> list[SimulationResult]:
    """Per-lane event loop for interval-recording lanes.

    Time/energy stepping is still vectorized across lanes, but each
    lane's allocation goes through the scalar allocator (intervals need
    bottleneck bindings) and is memoized per live-template composition.
    """
    n_lanes = len(lanes)
    width = 8
    n_max = max(lane.n_nodes for lane in lanes)
    rate_m = np.zeros((n_lanes, width))
    rem_m = np.full((n_lanes, width), np.inf)
    floor_m = np.full((n_lanes, width), -np.inf)
    power_m = np.zeros((n_lanes, n_max))
    energy_m = np.zeros((n_lanes, n_max))
    time_arr = np.zeros(n_lanes)

    active = list(lanes)
    iterations = 0
    flow_steps = 0
    while active:
        # -- phase A: per-lane admissions and idle gaps (scalar loop head)
        proceed = []
        for lane in active:
            if lane.advance(time_arr, energy_m, max_events):
                proceed.append(lane)
        active = proceed
        if not active:
            break

        # -- phase B: allocation states (scalar allocator, memoized)
        for lane in active:
            if not lane.dirty:
                continue
            lane.flush()
            state = lane.state_memo.get(lane.state_key())
            lane.state = state if state is not None else lane.allocate_scalar()

        # -- rebuild matrix rows for lanes whose live set changed
        need = max(lane.live_tid.size for lane in active)
        if need > width:
            while width < need:
                width *= 2
            rate_m = _grow(rate_m, width, 0.0)
            rem_m = _grow(rem_m, width, np.inf)
            floor_m = _grow(floor_m, width, -np.inf)
        for lane in active:
            if lane.dirty:
                lane.rebuild_row(rate_m, rem_m, floor_m, power_m)

        # -- phase C: vectorized step across lanes
        iterations += 1
        flow_steps += sum(lane.live_tid.size for lane in active)
        act = np.array([lane.index for lane in active], dtype=np.int64)
        sub_rate = rate_m[act]
        sub_rem = rem_m[act]
        ratio = np.divide(
            sub_rem,
            sub_rate,
            out=np.full_like(sub_rem, np.inf),
            where=sub_rate > 0,
        )
        dt = ratio.min(axis=1)
        gaps = np.array(
            [
                lane.starts[lane.cursor] - time_arr[lane.index]
                if lane.cursor < len(lane.order)
                else np.inf
                for lane in active
            ]
        )
        dt = np.minimum(dt, gaps)
        bad = ~np.isfinite(dt) | (dt < 0)
        if bad.any():
            raise SimulationError(
                "simulation stalled: live flows have zero rate and no "
                "pending events"
            )
        pre_t = time_arr[act].copy()
        energy_m[act] += power_m[act] * dt[:, None]
        new_rem = sub_rem - sub_rate * dt[:, None]
        rem_m[act] = new_rem
        time_arr[act] += dt
        done = new_rem <= floor_m[act]

        # -- phase D: per-lane retirement and phase barriers (scalar tail)
        for j, lane in enumerate(active):
            lane.after_step(dt[j], pre_t[j], time_arr[lane.index], done[j])

    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.count("sim.multiplex.iterations", iterations)
        telemetry.count("sim.multiplex.flow_steps", flow_steps)
        telemetry.count("sim.events", sum(lane.events for lane in lanes))
    return [lane.finalize(time_arr, energy_m) for lane in lanes]


def _grow(matrix: np.ndarray, width: int, fill: float) -> np.ndarray:
    grown = np.full((matrix.shape[0], width), fill)
    grown[:, : matrix.shape[1]] = matrix
    return grown
