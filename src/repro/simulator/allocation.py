"""Max-min fair rate allocation (progressive filling).

Given flows with fixed per-resource demand coefficients and resources with
finite capacities, the allocator raises every flow's rate at the same pace
until some resource saturates, freezes the flows crossing it, and repeats.
The result is the classic max-min fair allocation used to model TCP-like
bandwidth sharing — appropriate here because P-store's exchange operator
runs one TCP stream per (sender, receiver) pair and the paper observed
near-fair sharing on its 1 Gb/s switch.

A flow's *rate* is expressed in "reference units"/s (we use pre-filter MB of
the scanned partition); its usage of resource ``r`` is ``rate * coef(f, r)``.
This lets a single flow model a scan -> filter -> partition -> send pipeline
whose network demand is ``selectivity * (N-1)/N`` of its scan rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "max_min_fair_rates",
    "max_min_fair_allocation",
    "AllocationSystem",
    "max_min_fair_rates_batch",
    "max_min_fair_rates_flat",
]

_EPSILON = 1e-12


def max_min_fair_rates(
    demands: Sequence[Mapping[str, float]],
    capacities: Mapping[str, float],
) -> list[float]:
    """Max-min fair rates only (see :func:`max_min_fair_allocation`)."""
    rates, _bindings = max_min_fair_allocation(demands, capacities)
    return rates


def max_min_fair_allocation(
    demands: Sequence[Mapping[str, float]],
    capacities: Mapping[str, float],
) -> tuple[list[float], list[str]]:
    """Compute max-min fair rates for ``demands`` under ``capacities``.

    Parameters
    ----------
    demands:
        One mapping per flow: resource name -> demand coefficient (> 0).
        Resources absent from the mapping are not used by the flow.
    capacities:
        Resource name -> capacity.  Every resource referenced by a flow
        must be present.

    Returns
    -------
    ``(rates, bindings)``, both parallel to ``demands``.  ``bindings[i]``
    names the saturated resource that froze flow ``i`` — its bottleneck in
    the Section 4.1 sense (a flow's rate cannot rise without exceeding that
    resource's capacity).

    Raises
    ------
    SimulationError
        If a flow references an unknown resource, has a non-positive
        coefficient, or has no demands at all (its rate would be unbounded).
    """
    for i, demand in enumerate(demands):
        if not demand:
            raise SimulationError(f"flow #{i} has no resource demands; rate is unbounded")
        for resource, coef in demand.items():
            if resource not in capacities:
                raise SimulationError(f"flow #{i} references unknown resource {resource!r}")
            if coef <= 0 or math.isnan(coef):
                raise SimulationError(
                    f"flow #{i} has invalid coefficient {coef} on {resource!r}"
                )

    rates = [0.0] * len(demands)
    bindings = [""] * len(demands)
    if not demands:
        return rates, bindings

    residual = dict(capacities)
    unfrozen = set(range(len(demands)))

    while unfrozen:
        # Aggregate demand of unfrozen flows per resource.
        load: dict[str, float] = {}
        for i in unfrozen:
            for resource, coef in demands[i].items():
                load[resource] = load.get(resource, 0.0) + coef

        # Largest common rate increment before some resource saturates.
        delta = math.inf
        for resource, total in load.items():
            delta = min(delta, max(0.0, residual[resource]) / total)
        if math.isinf(delta):  # pragma: no cover - guarded by validation above
            raise SimulationError("no loaded resources for unfrozen flows")

        for i in unfrozen:
            rates[i] += delta
        for resource, total in load.items():
            residual[resource] -= delta * total

        saturated = {
            resource
            for resource in load
            if residual[resource] <= _EPSILON * max(1.0, capacities[resource])
        }
        newly_frozen = {
            i for i in unfrozen if any(r in saturated for r in demands[i])
        }
        if not newly_frozen:
            # delta > 0 but nothing saturated can only happen through float
            # rounding; freeze everything to guarantee termination.
            if delta <= _EPSILON:
                newly_frozen = set(unfrozen)
            else:  # pragma: no cover - defensive
                raise SimulationError("progressive filling failed to converge")
        for i in newly_frozen:
            frozen_by = sorted(r for r in demands[i] if r in saturated)
            if frozen_by:
                # the flow's heaviest saturated resource is its bottleneck
                bindings[i] = max(frozen_by, key=lambda r: demands[i][r])
            else:  # rounding fallback: blame the most-utilized resource
                bindings[i] = max(
                    demands[i],
                    key=lambda r: demands[i][r] / max(capacities[r], _EPSILON),
                )
        unfrozen -= newly_frozen

    return rates, bindings


@dataclass(frozen=True)
class AllocationSystem:
    """One lane's (flows x resources) demand system in COO form.

    The arrays list every (flow, resource, coefficient) demand entry in
    *flow-major, demand-insertion* order — exactly the order the scalar
    allocator's ``load`` dict accumulates in — with flow and resource ids
    local to the lane.  ``capacities`` is indexed by local resource id.
    """

    flow_index: np.ndarray
    resource_index: np.ndarray
    coefficient: np.ndarray
    num_flows: int
    capacities: np.ndarray

    def __post_init__(self) -> None:
        if self.capacities.shape[0] == 0:
            raise SimulationError("allocation system has no resources")


def max_min_fair_rates_batch(
    systems: Sequence[AllocationSystem],
) -> list[np.ndarray]:
    """Progressive filling over many independent lanes at once.

    Each lane is its own cluster: lanes share no resources, so the global
    arrays are block-diagonal and every per-round quantity (aggregate
    load, rate increment, residual decrement, saturation test) is computed
    for all lanes in one vectorized pass.  Per lane, the arithmetic is
    op-for-op the scalar :func:`max_min_fair_allocation` sequence —
    ``np.bincount`` accumulates weights in input order, matching the
    scalar load-dict accumulation, and every update is the same
    elementwise float64 operation — so each lane's rates are bit-identical
    to running it alone through the scalar allocator.  Frozen flows'
    demand entries are compacted away between rounds (an order-preserving
    gather, so accumulation order never changes); a lane that converged
    early simply stops contributing entries while slower lanes finish.

    Demand systems are trusted as constructed (the simulator validates
    jobs against its resource pool before building them); the per-flow
    validation of the scalar allocator is not repeated here.

    Returns one rates array per lane, parallel to ``systems``.  Bindings
    are not computed (the batch path serves interval-free simulation);
    use the scalar allocator when bottleneck attribution is needed.
    """
    n_lanes = len(systems)
    if n_lanes == 0:
        return []

    flow_counts = np.array([s.num_flows for s in systems], dtype=np.int64)
    res_counts = np.array([s.capacities.shape[0] for s in systems], dtype=np.int64)
    flow_offsets = np.zeros(n_lanes + 1, dtype=np.int64)
    np.cumsum(flow_counts, out=flow_offsets[1:])
    res_offsets = np.zeros(n_lanes + 1, dtype=np.int64)
    np.cumsum(res_counts, out=res_offsets[1:])

    entry_flow = np.concatenate(
        [s.flow_index + flow_offsets[i] for i, s in enumerate(systems)]
    )
    entry_res = np.concatenate(
        [s.resource_index + res_offsets[i] for i, s in enumerate(systems)]
    )
    entry_coef = np.concatenate([s.coefficient for s in systems])
    capacities = np.concatenate([s.capacities for s in systems])

    rates = max_min_fair_rates_flat(
        entry_flow,
        entry_res,
        entry_coef,
        np.repeat(np.arange(n_lanes), flow_counts),
        np.repeat(np.arange(n_lanes), res_counts),
        res_offsets,
        capacities,
        _EPSILON * np.maximum(1.0, capacities),
        int(flow_offsets[-1]),
        n_lanes,
    )
    return [
        rates[flow_offsets[i] : flow_offsets[i + 1]] for i in range(n_lanes)
    ]


def max_min_fair_rates_flat(
    entry_flow: np.ndarray,
    entry_res: np.ndarray,
    entry_coef: np.ndarray,
    lane_of_flow: np.ndarray,
    lane_of_res: np.ndarray,
    res_offsets: np.ndarray,
    capacities: np.ndarray,
    sat_threshold: np.ndarray,
    total_flows: int,
    n_lanes: int,
) -> np.ndarray:
    """Progressive filling over pre-concatenated block-diagonal arrays.

    The engine behind :func:`max_min_fair_rates_batch`, exposed for
    callers (the event-multiplexed simulator) that already maintain the
    global entry/capacity arrays and would otherwise re-concatenate them
    on every allocation.  ``entry_flow``/``entry_res`` hold *global* flow
    and resource ids (each lane's block offset already applied), in
    flow-major, demand-insertion order per lane; ``res_offsets`` bounds
    each lane's resource block; ``sat_threshold`` is the per-resource
    saturation cutoff (``_EPSILON * max(1, capacity)``).  Lanes with no
    flows are permitted and ignored.  Returns the flat rates array,
    indexed by global flow id.
    """
    residual = capacities.copy()
    rates = np.zeros(total_flows)
    #: global ids of still-unfrozen flows; the entry arrays below only
    #: hold these flows' demand entries (compacted every round)
    flow_ids = np.arange(total_flows)
    #: per-lane count of unfrozen flows, maintained incrementally
    live_count = np.bincount(lane_of_flow, minlength=n_lanes)
    total_res = capacities.shape[0]

    while flow_ids.size:
        load = np.bincount(entry_res, weights=entry_coef, minlength=total_res)
        touched = load > 0

        ratio = np.full(total_res, np.inf)
        np.divide(np.maximum(residual, 0.0), load, out=ratio, where=touched)
        delta_lane = np.minimum.reduceat(ratio, res_offsets[:-1])

        flow_lanes = lane_of_flow[flow_ids]
        lane_live = live_count > 0
        if np.any(lane_live & ~np.isfinite(delta_lane)):  # pragma: no cover
            raise SimulationError("no loaded resources for unfrozen flows")

        rates[flow_ids] += delta_lane[flow_lanes]
        delta_res = delta_lane[lane_of_res]
        residual[touched] -= delta_res[touched] * load[touched]

        saturated = residual <= sat_threshold
        flow_frozen = np.zeros(total_flows, dtype=bool)
        flow_frozen[entry_flow[saturated[entry_res]]] = True

        newly = flow_frozen[flow_ids]
        frozen_lanes = np.bincount(flow_lanes[newly], minlength=n_lanes) > 0
        stuck = lane_live & ~frozen_lanes
        if stuck.any():
            # delta > 0 but nothing saturated can only happen through
            # float rounding (same fallback as the scalar allocator).
            if np.any(stuck & (delta_lane > _EPSILON)):  # pragma: no cover
                raise SimulationError("progressive filling failed to converge")
            newly |= stuck[flow_lanes]
            flow_frozen[flow_ids[newly]] = True

        live_count = live_count - np.bincount(
            flow_lanes[newly], minlength=n_lanes
        )
        flow_ids = flow_ids[~newly]
        entry_keep = ~flow_frozen[entry_flow]
        entry_flow = entry_flow[entry_keep]
        entry_res = entry_res[entry_keep]
        entry_coef = entry_coef[entry_keep]

    return rates
