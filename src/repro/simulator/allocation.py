"""Max-min fair rate allocation (progressive filling).

Given flows with fixed per-resource demand coefficients and resources with
finite capacities, the allocator raises every flow's rate at the same pace
until some resource saturates, freezes the flows crossing it, and repeats.
The result is the classic max-min fair allocation used to model TCP-like
bandwidth sharing — appropriate here because P-store's exchange operator
runs one TCP stream per (sender, receiver) pair and the paper observed
near-fair sharing on its 1 Gb/s switch.

A flow's *rate* is expressed in "reference units"/s (we use pre-filter MB of
the scanned partition); its usage of resource ``r`` is ``rate * coef(f, r)``.
This lets a single flow model a scan -> filter -> partition -> send pipeline
whose network demand is ``selectivity * (N-1)/N`` of its scan rate.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import SimulationError

__all__ = ["max_min_fair_rates", "max_min_fair_allocation"]

_EPSILON = 1e-12


def max_min_fair_rates(
    demands: Sequence[Mapping[str, float]],
    capacities: Mapping[str, float],
) -> list[float]:
    """Max-min fair rates only (see :func:`max_min_fair_allocation`)."""
    rates, _bindings = max_min_fair_allocation(demands, capacities)
    return rates


def max_min_fair_allocation(
    demands: Sequence[Mapping[str, float]],
    capacities: Mapping[str, float],
) -> tuple[list[float], list[str]]:
    """Compute max-min fair rates for ``demands`` under ``capacities``.

    Parameters
    ----------
    demands:
        One mapping per flow: resource name -> demand coefficient (> 0).
        Resources absent from the mapping are not used by the flow.
    capacities:
        Resource name -> capacity.  Every resource referenced by a flow
        must be present.

    Returns
    -------
    ``(rates, bindings)``, both parallel to ``demands``.  ``bindings[i]``
    names the saturated resource that froze flow ``i`` — its bottleneck in
    the Section 4.1 sense (a flow's rate cannot rise without exceeding that
    resource's capacity).

    Raises
    ------
    SimulationError
        If a flow references an unknown resource, has a non-positive
        coefficient, or has no demands at all (its rate would be unbounded).
    """
    for i, demand in enumerate(demands):
        if not demand:
            raise SimulationError(f"flow #{i} has no resource demands; rate is unbounded")
        for resource, coef in demand.items():
            if resource not in capacities:
                raise SimulationError(f"flow #{i} references unknown resource {resource!r}")
            if coef <= 0 or math.isnan(coef):
                raise SimulationError(
                    f"flow #{i} has invalid coefficient {coef} on {resource!r}"
                )

    rates = [0.0] * len(demands)
    bindings = [""] * len(demands)
    if not demands:
        return rates, bindings

    residual = dict(capacities)
    unfrozen = set(range(len(demands)))

    while unfrozen:
        # Aggregate demand of unfrozen flows per resource.
        load: dict[str, float] = {}
        for i in unfrozen:
            for resource, coef in demands[i].items():
                load[resource] = load.get(resource, 0.0) + coef

        # Largest common rate increment before some resource saturates.
        delta = math.inf
        for resource, total in load.items():
            delta = min(delta, max(0.0, residual[resource]) / total)
        if math.isinf(delta):  # pragma: no cover - guarded by validation above
            raise SimulationError("no loaded resources for unfrozen flows")

        for i in unfrozen:
            rates[i] += delta
        for resource, total in load.items():
            residual[resource] -= delta * total

        saturated = {
            resource
            for resource in load
            if residual[resource] <= _EPSILON * max(1.0, capacities[resource])
        }
        newly_frozen = {
            i for i in unfrozen if any(r in saturated for r in demands[i])
        }
        if not newly_frozen:
            # delta > 0 but nothing saturated can only happen through float
            # rounding; freeze everything to guarantee termination.
            if delta <= _EPSILON:
                newly_frozen = set(unfrozen)
            else:  # pragma: no cover - defensive
                raise SimulationError("progressive filling failed to converge")
        for i in newly_frozen:
            frozen_by = sorted(r for r in demands[i] if r in saturated)
            if frozen_by:
                # the flow's heaviest saturated resource is its bottleneck
                bindings[i] = max(frozen_by, key=lambda r: demands[i][r])
            else:  # rounding fallback: blame the most-utilized resource
                bindings[i] = max(
                    demands[i],
                    key=lambda r: demands[i][r] / max(capacities[r], _EPSILON),
                )
        unfrozen -= newly_frozen

    return rates, bindings
