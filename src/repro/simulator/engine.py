"""The fluid simulation engine.

:class:`ClusterSimulator` advances simulated time from event to event.
Between events the rate of every live flow is constant (computed by the
max-min fair allocator), so per-node CPU utilization — and therefore power —
is piecewise constant and energy integrates exactly.

Events are: a job becoming ready (its start time), a flow completing, and a
phase barrier releasing the next phase of a job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SimulationError
from repro.hardware.cluster import ClusterSpec
from repro.simulator.allocation import max_min_fair_allocation
from repro.simulator.jobs import FlowSpec, Job
from repro.simulator.network import IDEAL_SWITCH, SwitchModel
from repro.simulator.resources import CPU, ResourcePool

__all__ = ["ClusterSimulator", "SimulationResult", "Interval"]

_COMPLETION_EPS = 1e-9


@dataclass(frozen=True)
class Interval:
    """One piecewise-constant stretch of the simulation."""

    start_s: float
    end_s: float
    node_utilization: tuple[float, ...]
    node_power_w: tuple[float, ...]
    flow_names: tuple[str, ...]
    #: per-flow binding resource (parallel to ``flow_names``): the saturated
    #: resource that capped each flow during this interval
    flow_bindings: tuple[str, ...] = ()
    #: owning job of each flow (parallel to ``flow_names``)
    flow_jobs: tuple[str, ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def cluster_power_w(self) -> float:
        return sum(self.node_power_w)

    @property
    def energy_j(self) -> float:
        return self.cluster_power_w * self.duration_s


@dataclass
class SimulationResult:
    """Outcome of one :meth:`ClusterSimulator.run` call."""

    makespan_s: float
    energy_j: float
    node_energy_j: tuple[float, ...]
    job_start_s: dict[str, float]
    job_completion_s: dict[str, float]
    intervals: list[Interval] = field(repr=False, default_factory=list)

    def response_time_s(self, job_name: str) -> float:
        """Wall-clock duration of one job."""
        try:
            return self.job_completion_s[job_name] - self.job_start_s[job_name]
        except KeyError:
            raise SimulationError(f"unknown job {job_name!r}") from None

    @property
    def average_power_w(self) -> float:
        """Mean cluster power over the whole run."""
        if self.makespan_s <= 0:
            return 0.0
        return self.energy_j / self.makespan_s

    @property
    def performance(self) -> float:
        """The paper's performance metric: inverse of response time."""
        if self.makespan_s <= 0:
            raise SimulationError("zero-makespan run has no performance")
        return 1.0 / self.makespan_s

    def _require_intervals(self, accessor: str) -> None:
        if not self.intervals:
            raise SimulationError(
                f"{accessor} needs the piecewise interval trace, but this "
                "result has none (the simulator ran with "
                "record_intervals=False)"
            )

    def power_at(self, time_s: float) -> float:
        """Cluster power draw at an instant (step function over intervals)."""
        self._require_intervals("power_at")
        for interval in self.intervals:
            if interval.start_s <= time_s < interval.end_s:
                return interval.cluster_power_w
        if time_s >= self.intervals[-1].end_s:
            return self.intervals[-1].cluster_power_w
        raise SimulationError(f"time {time_s} precedes the simulation")

    def mean_utilization(self, node_id: int) -> float:
        """Time-weighted mean CPU utilization of one node."""
        self._require_intervals("mean_utilization")
        total = sum(i.node_utilization[node_id] * i.duration_s for i in self.intervals)
        duration = sum(i.duration_s for i in self.intervals)
        if duration <= 0:
            return 0.0
        return total / duration


class _LiveFlow:
    __slots__ = ("spec", "job_index", "phase_index", "remaining_mb", "job_name")

    def __init__(self, spec: FlowSpec, job_index: int, phase_index: int, job_name: str):
        self.spec = spec
        self.job_index = job_index
        self.phase_index = phase_index
        self.remaining_mb = spec.volume_mb
        self.job_name = job_name

    @property
    def done(self) -> bool:
        return self.remaining_mb <= _COMPLETION_EPS * max(1.0, self.spec.volume_mb)


class ClusterSimulator:
    """Simulates jobs on a cluster, producing time and energy.

    Parameters
    ----------
    cluster:
        The cluster design (node specs determine resource capacities and
        power models).
    switch:
        Network contention model; :data:`~repro.simulator.network.IDEAL_SWITCH`
        by default.
    record_intervals:
        Keep the full piecewise trace on the result (needed by the meter
        experiments; can be disabled for large sweeps).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        switch: SwitchModel = IDEAL_SWITCH,
        record_intervals: bool = True,
    ):
        self.pool = ResourcePool(cluster)
        self.switch = switch
        self.record_intervals = record_intervals

    # ------------------------------------------------------------------ public
    def run(self, jobs: Sequence[Job], max_events: int = 1_000_000) -> SimulationResult:
        """Run ``jobs`` to completion and return timing and energy."""
        self._validate(jobs)

        time_s = 0.0
        job_phase = [0] * len(jobs)
        phase_live_count = [0] * len(jobs)
        job_start: dict[str, float] = {}
        job_completion: dict[str, float] = {}
        # Arrival order over a cursor: pop(0) on a list is O(n) per
        # admission, which turns long traces quadratic.
        order = sorted(range(len(jobs)), key=lambda i: jobs[i].start_time_s)
        cursor = 0
        live: list[_LiveFlow] = []

        num_nodes = self.pool.num_nodes
        node_energy = [0.0] * num_nodes
        intervals: list[Interval] = []
        events = 0

        while cursor < len(order) or live:
            events += 1
            if events > max_events:
                raise SimulationError(f"exceeded {max_events} events; simulation stalled?")

            # Admit every job whose start time has arrived.
            while (
                cursor < len(order)
                and jobs[order[cursor]].start_time_s <= time_s + _COMPLETION_EPS
            ):
                index = order[cursor]
                cursor += 1
                # The admission window extends _COMPLETION_EPS past now, so
                # clamp: a job must never be recorded as starting before it
                # arrived (that would bias queueing delay negative).
                job_start[jobs[index].name] = max(time_s, jobs[index].start_time_s)
                self._advance_job(
                    jobs, index, 0, live, phase_live_count, job_phase,
                    time_s, job_completion,
                )

            if not live:
                if cursor < len(order):
                    # Idle gap until the next arrival: the cluster still
                    # draws engine-idle power (relevant for the delayed-
                    # execution studies of Section 2's citations).
                    next_start = jobs[order[cursor]].start_time_s
                    gap = next_start - time_s
                    self._integrate([], [], [], time_s, gap, node_energy, intervals)
                    time_s = next_start
                    continue
                break

            rates, bindings = self._allocate(live)

            # Next event: earliest flow completion or job admission.
            dt = math.inf
            for flow, rate in zip(live, rates):
                if rate > 0:
                    dt = min(dt, flow.remaining_mb / rate)
            if cursor < len(order):
                dt = min(dt, jobs[order[cursor]].start_time_s - time_s)
            if not math.isfinite(dt) or dt < 0:
                raise SimulationError(
                    "simulation stalled: live flows have zero rate and no pending events"
                )

            self._integrate(live, rates, bindings, time_s, dt, node_energy, intervals)

            for flow, rate in zip(live, rates):
                flow.remaining_mb -= rate * dt
            time_s += dt

            # Retire completed flows and release phase barriers.
            finished = [flow for flow in live if flow.done]
            if finished:
                live = [flow for flow in live if not flow.done]
                touched_jobs = set()
                for flow in finished:
                    phase_live_count[flow.job_index] -= 1
                    touched_jobs.add(flow.job_index)
                for index in touched_jobs:
                    if phase_live_count[index] == 0 and job_phase[index] is not None:
                        self._advance_job(
                            jobs, index, job_phase[index] + 1, live,
                            phase_live_count, job_phase, time_s, job_completion,
                        )

        return SimulationResult(
            makespan_s=time_s,
            energy_j=sum(node_energy),
            node_energy_j=tuple(node_energy),
            job_start_s=job_start,
            job_completion_s=job_completion,
            intervals=intervals,
        )

    # ----------------------------------------------------------------- helpers
    def _validate(self, jobs: Sequence[Job]) -> None:
        if not jobs:
            raise SimulationError("no jobs to run")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate job names: {names}")
        for job in jobs:
            for phase in job.phases:
                for flow in phase.flows:
                    for resource in flow.demands:
                        if resource not in self.pool:
                            raise SimulationError(
                                f"job {job.name!r} flow {flow.name!r} references "
                                f"unknown resource {resource!r}"
                            )

    def _advance_job(
        self,
        jobs: Sequence[Job],
        job_index: int,
        start_phase: int,
        live: list[_LiveFlow],
        phase_live_count: list[int],
        job_phase: list,
        time_s: float,
        job_completion: dict[str, float],
    ) -> None:
        """Admit phases from ``start_phase`` on, skipping all-empty ones."""
        phase_index = start_phase
        while True:
            if phase_index >= len(jobs[job_index].phases):
                job_completion[jobs[job_index].name] = time_s
                job_phase[job_index] = None
                return
            self._admit_phase(jobs, job_index, phase_index, live, phase_live_count, job_phase)
            if phase_live_count[job_index] > 0:
                return
            phase_index += 1

    def _admit_phase(
        self,
        jobs: Sequence[Job],
        job_index: int,
        phase_index: int,
        live: list[_LiveFlow],
        phase_live_count: list[int],
        job_phase: list,
    ) -> None:
        job_phase[job_index] = phase_index
        count = 0
        for flow in jobs[job_index].phases[phase_index].flows:
            if flow.volume_mb > 0:
                live.append(
                    _LiveFlow(flow, job_index, phase_index, jobs[job_index].name)
                )
                count += 1
        phase_live_count[job_index] = count

    def _allocate(
        self, live: Sequence[_LiveFlow]
    ) -> tuple[list[float], list[str]]:
        capacities = self.pool.capacities()
        network_flows = sum(
            1
            for flow in live
            if any(self.pool.is_network(r) for r in flow.spec.demands)
        )
        efficiency = self.switch.efficiency(network_flows)
        if efficiency < 1.0:
            for name in capacities:
                if self.pool.is_network(name):
                    capacities[name] *= efficiency
        return max_min_fair_allocation(
            [flow.spec.demands for flow in live], capacities
        )

    def _integrate(
        self,
        live: Sequence[_LiveFlow],
        rates: Sequence[float],
        bindings: Sequence[str],
        time_s: float,
        dt: float,
        node_energy: list[float],
        intervals: list[Interval],
    ) -> None:
        if dt <= 0:
            return
        cpu_rates = [0.0] * self.pool.num_nodes
        for flow, rate in zip(live, rates):
            for resource, coef in flow.spec.demands.items():
                kind, _, node = resource.partition(":")
                if kind == CPU:
                    cpu_rates[int(node)] += coef * rate
        utils = []
        powers = []
        for node_id in self.pool.node_ids():
            spec = self.pool.node_spec(node_id)
            util = spec.utilization(cpu_rates[node_id])
            watts = spec.power_model.power(util)
            utils.append(util)
            powers.append(watts)
            node_energy[node_id] += watts * dt
        if self.record_intervals:
            intervals.append(
                Interval(
                    start_s=time_s,
                    end_s=time_s + dt,
                    node_utilization=tuple(utils),
                    node_power_w=tuple(powers),
                    flow_names=tuple(flow.spec.name for flow in live),
                    flow_bindings=tuple(bindings),
                    flow_jobs=tuple(flow.job_name for flow in live),
                )
            )
