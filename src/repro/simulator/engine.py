"""The fluid simulation engine.

:class:`ClusterSimulator` advances simulated time from event to event.
Between events the rate of every live flow is constant (computed by the
max-min fair allocator), so per-node CPU utilization — and therefore power —
is piecewise constant and energy integrates exactly.

Events are: a job becoming ready (its start time), a flow completing, and a
phase barrier releasing the next phase of a job.

With a dynamic :class:`~repro.policy.policies.ControlPolicy` attached
(``run(jobs, policy=...)``), two more event kinds interleave: periodic
*control ticks*, at which the policy observes the cluster and may gate or
wake nodes or step their DVFS factors, and *power-state transitions*
(gating -> gated, waking -> active) completing.  Nodes then carry a power
state — ``active`` (normal), ``gating``/``waking`` (transitioning: no
capacity, near-peak transition power), ``gated`` (off: no capacity,
standby residual power) — and a job whose flows demand an inactive node is
*held* at arrival until every node it needs is active again, so wake-up
latency shows up in its response time exactly where a production cluster
would pay it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SimulationError
from repro.hardware.cluster import ClusterSpec
from repro.simulator.allocation import max_min_fair_allocation
from repro.simulator.jobs import FlowSpec, Job
from repro.simulator.network import IDEAL_SWITCH, SwitchModel
from repro.simulator.resources import CPU, ResourcePool
from repro.telemetry import get_telemetry

__all__ = [
    "ClusterSimulator",
    "SimulationResult",
    "Interval",
    "ACTIVE",
    "GATING",
    "GATED",
    "WAKING",
]

_COMPLETION_EPS = 1e-9

#: node power states (re-exported by :mod:`repro.policy.policies`)
ACTIVE = "active"
GATING = "gating"
GATED = "gated"
WAKING = "waking"


@dataclass(frozen=True)
class Interval:
    """One piecewise-constant stretch of the simulation."""

    start_s: float
    end_s: float
    node_utilization: tuple[float, ...]
    node_power_w: tuple[float, ...]
    flow_names: tuple[str, ...]
    #: per-flow binding resource (parallel to ``flow_names``): the saturated
    #: resource that capped each flow during this interval
    flow_bindings: tuple[str, ...] = ()
    #: owning job of each flow (parallel to ``flow_names``)
    flow_jobs: tuple[str, ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def cluster_power_w(self) -> float:
        return sum(self.node_power_w)

    @property
    def energy_j(self) -> float:
        return self.cluster_power_w * self.duration_s


@dataclass
class SimulationResult:
    """Outcome of one :meth:`ClusterSimulator.run` call."""

    makespan_s: float
    energy_j: float
    node_energy_j: tuple[float, ...]
    job_start_s: dict[str, float]
    job_completion_s: dict[str, float]
    intervals: list[Interval] = field(repr=False, default_factory=list)
    #: total node-seconds spent gated (0.0 unless a dynamic policy ran)
    gated_node_seconds: float = 0.0
    #: energy saved vs keeping every node active-idle: the integral of
    #: (idle power - actual power) over every non-active node interval —
    #: transition stretches *subtract* (they draw more than idle)
    energy_saved_j: float = 0.0
    #: energy drawn by fault-recovery boot transitions (0.0 without faults)
    recovery_energy_j: float = 0.0
    #: crash-killed jobs re-queued under abort-and-retry, counted per
    #: retry attempt (one job killed twice contributes 2)
    retried_jobs: int = 0
    #: jobs shed under the failure policy: killed past the retry budget,
    #: dropped outright, or stranded by a node that never recovers
    dropped_jobs: int = 0
    #: names of the shed jobs, in the order they were dropped
    dropped_job_names: tuple[str, ...] = ()
    #: fault events whose onset fired before the run completed
    faults_survived: int = 0
    #: grams of CO₂ this run emitted — stamped by a cost-model-bearing
    #: evaluator (time-of-day curves integrate the interval trace), never
    #: computed by the simulator itself; ``None`` without a cost model
    carbon_g: float | None = None
    #: dollars this run cost (capex amortization + energy tariff) —
    #: stamped like ``carbon_g``; ``None`` without a cost model
    price_usd: float | None = None

    def response_time_s(self, job_name: str) -> float:
        """Wall-clock duration of one job."""
        try:
            return self.job_completion_s[job_name] - self.job_start_s[job_name]
        except KeyError:
            raise SimulationError(f"unknown job {job_name!r}") from None

    @property
    def average_power_w(self) -> float:
        """Mean cluster power over the whole run."""
        if self.makespan_s <= 0:
            return 0.0
        return self.energy_j / self.makespan_s

    @property
    def performance(self) -> float:
        """The paper's performance metric: inverse of response time."""
        if self.makespan_s <= 0:
            raise SimulationError("zero-makespan run has no performance")
        return 1.0 / self.makespan_s

    def _require_intervals(self, accessor: str) -> None:
        if not self.intervals:
            raise SimulationError(
                f"{accessor} needs the piecewise interval trace, but this "
                "result has none (the simulator ran with "
                "record_intervals=False)"
            )

    def power_at(self, time_s: float) -> float:
        """Cluster power draw at an instant (step function over intervals)."""
        self._require_intervals("power_at")
        for interval in self.intervals:
            if interval.start_s <= time_s < interval.end_s:
                return interval.cluster_power_w
        if time_s >= self.intervals[-1].end_s:
            return self.intervals[-1].cluster_power_w
        raise SimulationError(f"time {time_s} precedes the simulation")

    def mean_utilization(self, node_id: int) -> float:
        """Time-weighted mean CPU utilization of one node."""
        self._require_intervals("mean_utilization")
        total = sum(i.node_utilization[node_id] * i.duration_s for i in self.intervals)
        duration = sum(i.duration_s for i in self.intervals)
        if duration <= 0:
            return 0.0
        return total / duration


class _LiveFlow:
    __slots__ = ("spec", "job_index", "phase_index", "remaining_mb", "job_name")

    def __init__(self, spec: FlowSpec, job_index: int, phase_index: int, job_name: str):
        self.spec = spec
        self.job_index = job_index
        self.phase_index = phase_index
        self.remaining_mb = spec.volume_mb
        self.job_name = job_name

    @property
    def done(self) -> bool:
        return self.remaining_mb <= _COMPLETION_EPS * max(1.0, self.spec.volume_mb)


class ClusterSimulator:
    """Simulates jobs on a cluster, producing time and energy.

    Parameters
    ----------
    cluster:
        The cluster design (node specs determine resource capacities and
        power models).
    switch:
        Network contention model; :data:`~repro.simulator.network.IDEAL_SWITCH`
        by default.
    record_intervals:
        Keep the full piecewise trace on the result (needed by the meter
        experiments; can be disabled for large sweeps).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        switch: SwitchModel = IDEAL_SWITCH,
        record_intervals: bool = True,
    ):
        self.pool = ResourcePool(cluster)
        self.switch = switch
        self.record_intervals = record_intervals

    # ------------------------------------------------------------------ public
    def run(
        self,
        jobs: Sequence[Job],
        max_events: int = 1_000_000,
        policy=None,
        control_interval_s: float = 1.0,
        faults=None,
        failure_policy=None,
        layout=None,
    ) -> SimulationResult:
        """Run ``jobs`` to completion and return timing and energy.

        ``policy`` optionally puts a
        :class:`~repro.policy.policies.ControlPolicy` in charge of node
        power states and per-node DVFS, consulted every
        ``control_interval_s`` simulated seconds.  ``None`` and *static*
        policies (``policy.is_static``) take the exact uncontrolled loop
        below — no tick events, no interval splits — so their results are
        bit-identical to the historical ones; dynamic policies dispatch
        to :meth:`_run_controlled`.

        ``faults`` optionally injects a
        :class:`~repro.faults.schedule.FaultSchedule` of node crashes,
        stragglers, and network degrades; ``failure_policy`` governs the
        jobs a crash kills, and ``layout`` (a
        :class:`~repro.pstore.replication.ReplicatedLayout`) makes a
        crash that strands every copy of a partition fatal.  A ``None``
        or *empty* schedule leaves this method on the exact healthy
        paths — fault-free runs are bit-identical to historical ones;
        any scheduled event dispatches to :meth:`_run_faulted`.
        """
        self._validate(jobs)
        if faults is not None and getattr(faults, "events", ()):
            return self._run_faulted(
                jobs, policy, control_interval_s, max_events,
                faults, failure_policy, layout,
            )
        if policy is not None and not policy.is_static:
            return self._run_controlled(
                jobs, policy, control_interval_s, max_events
            )

        time_s = 0.0
        job_phase = [0] * len(jobs)
        phase_live_count = [0] * len(jobs)
        job_start: dict[str, float] = {}
        job_completion: dict[str, float] = {}
        # Arrival order over a cursor: pop(0) on a list is O(n) per
        # admission, which turns long traces quadratic.
        order = sorted(range(len(jobs)), key=lambda i: jobs[i].start_time_s)
        cursor = 0
        live: list[_LiveFlow] = []

        num_nodes = self.pool.num_nodes
        node_energy = [0.0] * num_nodes
        intervals: list[Interval] = []
        events = 0

        while cursor < len(order) or live:
            events += 1
            if events > max_events:
                raise SimulationError(f"exceeded {max_events} events; simulation stalled?")

            # Admit every job whose start time has arrived.
            while (
                cursor < len(order)
                and jobs[order[cursor]].start_time_s <= time_s + _COMPLETION_EPS
            ):
                index = order[cursor]
                cursor += 1
                # The admission window extends _COMPLETION_EPS past now, so
                # clamp: a job must never be recorded as starting before it
                # arrived (that would bias queueing delay negative).
                job_start[jobs[index].name] = max(time_s, jobs[index].start_time_s)
                self._advance_job(
                    jobs, index, 0, live, phase_live_count, job_phase,
                    time_s, job_completion,
                )

            if not live:
                if cursor < len(order):
                    # Idle gap until the next arrival: the cluster still
                    # draws engine-idle power (relevant for the delayed-
                    # execution studies of Section 2's citations).
                    next_start = jobs[order[cursor]].start_time_s
                    gap = next_start - time_s
                    self._integrate([], [], [], time_s, gap, node_energy, intervals)
                    time_s = next_start
                    continue
                break

            rates, bindings = self._allocate(live)

            # Next event: earliest flow completion or job admission.
            dt = math.inf
            for flow, rate in zip(live, rates):
                if rate > 0:
                    dt = min(dt, flow.remaining_mb / rate)
            if cursor < len(order):
                dt = min(dt, jobs[order[cursor]].start_time_s - time_s)
            if not math.isfinite(dt) or dt < 0:
                raise SimulationError(
                    "simulation stalled: live flows have zero rate and no pending events"
                )

            self._integrate(live, rates, bindings, time_s, dt, node_energy, intervals)

            for flow, rate in zip(live, rates):
                flow.remaining_mb -= rate * dt
            time_s += dt

            # Retire completed flows and release phase barriers.
            finished = [flow for flow in live if flow.done]
            if finished:
                live = [flow for flow in live if not flow.done]
                touched_jobs = set()
                for flow in finished:
                    phase_live_count[flow.job_index] -= 1
                    touched_jobs.add(flow.job_index)
                for index in touched_jobs:
                    if phase_live_count[index] == 0 and job_phase[index] is not None:
                        self._advance_job(
                            jobs, index, job_phase[index] + 1, live,
                            phase_live_count, job_phase, time_s, job_completion,
                        )

        # Hot-loop accounting stays in the local ``events`` counter and
        # flushes once per run, so the disabled path costs two calls here.
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("sim.runs")
            telemetry.count("sim.events", events)
        return SimulationResult(
            makespan_s=time_s,
            energy_j=sum(node_energy),
            node_energy_j=tuple(node_energy),
            job_start_s=job_start,
            job_completion_s=job_completion,
            intervals=intervals,
        )

    # ------------------------------------------------------- controlled loop
    def _run_controlled(
        self,
        jobs: Sequence[Job],
        policy,
        control_interval_s: float,
        max_events: int,
    ) -> SimulationResult:
        """The policy-driven event loop: ticks, power states, held jobs.

        Differences from :meth:`run`: a control tick fires every
        ``control_interval_s`` (the policy observes and acts); nodes move
        through the active/gating/gated/waking state machine priced by the
        policy's :class:`~repro.hardware.powerstate.PowerStateModel`; and
        an arriving job is *held* — ``job_start_s`` stays its arrival —
        until every node its flows demand is active, so wake-up latency
        lands in its response time.  A policy that never wakes the nodes a
        held job needs stalls the run into the ``max_events`` guard.
        """
        # Imported here, not at module top: repro.policy.candidate pulls
        # in the search package, which transitively imports this module.
        from repro.policy.policies import (
            ClusterState,
            GateNode,
            SetFrequency,
            UngateNode,
        )

        if control_interval_s <= 0:
            raise SimulationError(
                f"control interval must be > 0, got {control_interval_s}"
            )
        model = policy.power_state_model()

        num_nodes = self.pool.num_nodes
        roles = tuple(self.pool.node_role(n) for n in self.pool.node_ids())
        node_state = [ACTIVE] * num_nodes
        transition_end = [math.inf] * num_nodes
        factors = [1.0] * num_nodes
        node_energy = [0.0] * num_nodes
        gated_seconds = 0.0
        energy_saved = 0.0
        intervals: list[Interval] = []

        time_s = 0.0
        job_phase = [0] * len(jobs)
        phase_live_count = [0] * len(jobs)
        job_start: dict[str, float] = {}
        job_completion: dict[str, float] = {}
        order = sorted(range(len(jobs)), key=lambda i: jobs[i].start_time_s)
        cursor = 0
        live: list[_LiveFlow] = []
        held: list[int] = []
        # Trace jobs share phase tuples (template interning), so the
        # demanded-node set is computed once per distinct template.
        node_sets: dict[int, frozenset[int]] = {}

        def needed_nodes(index: int) -> frozenset[int]:
            key = id(jobs[index].phases)
            nodes = node_sets.get(key)
            if nodes is None:
                nodes = node_sets[key] = self._job_nodes(jobs[index])
            return nodes

        def integrate(rates: Sequence[float], dt: float) -> None:
            """Per-state energy over one piecewise-constant stretch."""
            nonlocal gated_seconds, energy_saved
            if dt <= 0:
                return
            cpu_rates = [0.0] * num_nodes
            for flow, rate in zip(live, rates):
                for resource, coef in flow.spec.demands.items():
                    kind, _, node = resource.partition(":")
                    if kind == CPU:
                        cpu_rates[int(node)] += coef * rate
            utils = []
            powers = []
            for node_id in range(num_nodes):
                spec = self.pool.node_spec(node_id)
                state = node_state[node_id]
                if state == ACTIVE:
                    effective = self._dvfs_spec(node_id, factors[node_id])
                    util = effective.utilization(cpu_rates[node_id])
                    watts = effective.power_model.power(util)
                else:
                    util = 0.0
                    if state == GATED:
                        watts = model.gated_power_w(spec)
                        gated_seconds += dt
                    else:  # gating or waking
                        watts = (
                            model.transition_power_fraction * spec.peak_power_w
                        )
                    energy_saved += (spec.idle_power_w - watts) * dt
                utils.append(util)
                powers.append(watts)
                node_energy[node_id] += watts * dt
            if self.record_intervals:
                intervals.append(
                    Interval(
                        start_s=time_s,
                        end_s=time_s + dt,
                        node_utilization=tuple(utils),
                        node_power_w=tuple(powers),
                        flow_names=tuple(flow.spec.name for flow in live),
                        flow_bindings=tuple(bindings),
                        flow_jobs=tuple(flow.job_name for flow in live),
                    )
                )

        last_busy_s = 0.0
        next_tick_s = control_interval_s
        bindings: Sequence[str] = []
        events = 0
        # Telemetry accumulates in locals (plain int adds in the hot loop)
        # and flushes once at the return below.
        ticks = 0
        gate_actions = 0
        ungate_actions = 0
        freq_actions = 0

        while cursor < len(order) or live or held:
            events += 1
            if events > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; simulation stalled?"
                )

            # Complete power-state transitions that are due.
            for node_id in range(num_nodes):
                if transition_end[node_id] <= time_s + _COMPLETION_EPS:
                    node_state[node_id] = (
                        GATED if node_state[node_id] == GATING else ACTIVE
                    )
                    transition_end[node_id] = math.inf

            # Take arrivals into the held queue; a job "starts" when it
            # arrives, so time spent waiting for nodes to wake is queueing
            # delay, not erased.
            while (
                cursor < len(order)
                and jobs[order[cursor]].start_time_s <= time_s + _COMPLETION_EPS
            ):
                index = order[cursor]
                cursor += 1
                job_start[jobs[index].name] = max(
                    time_s, jobs[index].start_time_s
                )
                held.append(index)

            # Release held jobs whose nodes are all active, arrival order.
            if held:
                still_held: list[int] = []
                for index in held:
                    if all(
                        node_state[n] == ACTIVE for n in needed_nodes(index)
                    ):
                        self._advance_job(
                            jobs, index, 0, live, phase_live_count,
                            job_phase, time_s, job_completion,
                        )
                    else:
                        still_held.append(index)
                held = still_held

            if live or held:
                last_busy_s = time_s

            # Control tick: the policy observes and acts.  Invalid actions
            # (gating a node that live flows demand, waking a node that is
            # not gated) are dropped — the controller races the cluster.
            if next_tick_s <= time_s + _COMPLETION_EPS:
                ticks += 1
                if live:
                    rates, bindings = self._allocate(live, factors)
                else:
                    rates, bindings = [], []
                cpu_rates = [0.0] * num_nodes
                for flow, rate in zip(live, rates):
                    for resource, coef in flow.spec.demands.items():
                        kind, _, node = resource.partition(":")
                        if kind == CPU:
                            cpu_rates[int(node)] += coef * rate
                loads = tuple(
                    min(
                        1.0,
                        cpu_rates[n]
                        / (
                            self.pool.node_spec(n).cpu_bandwidth_mbps
                            * factors[n]
                        ),
                    )
                    if node_state[n] == ACTIVE
                    else 0.0
                    for n in range(num_nodes)
                )
                snapshot = ClusterState(
                    time_s=time_s,
                    node_roles=roles,
                    node_states=tuple(node_state),
                    node_utilization=loads,
                    frequency_factors=tuple(factors),
                    queue_depth=len({flow.job_index for flow in live})
                    + len(held),
                    held_jobs=len(held),
                    idle_s=time_s - last_busy_s,
                )
                # A running job owns every node any of its phases demands —
                # gating one mid-job would strand a later phase.
                demanded = frozenset(
                    node
                    for flow in live
                    for node in needed_nodes(flow.job_index)
                )
                for action in policy.observe(snapshot):
                    if isinstance(action, GateNode):
                        node_id = action.node_id
                        if (
                            0 <= node_id < num_nodes
                            and node_state[node_id] == ACTIVE
                            and node_id not in demanded
                        ):
                            gate_actions += 1
                            if model.shutdown_s > 0:
                                node_state[node_id] = GATING
                                transition_end[node_id] = (
                                    time_s + model.shutdown_s
                                )
                            else:
                                node_state[node_id] = GATED
                    elif isinstance(action, UngateNode):
                        node_id = action.node_id
                        if (
                            0 <= node_id < num_nodes
                            and node_state[node_id] == GATED
                        ):
                            ungate_actions += 1
                            if model.boot_s > 0:
                                node_state[node_id] = WAKING
                                transition_end[node_id] = time_s + model.boot_s
                            else:
                                node_state[node_id] = ACTIVE
                    elif isinstance(action, SetFrequency):
                        if 0 <= action.node_id < num_nodes:
                            freq_actions += 1
                            factors[action.node_id] = action.frequency_factor
                    else:
                        raise SimulationError(
                            f"unknown control action: {action!r}"
                        )
                while next_tick_s <= time_s + _COMPLETION_EPS:
                    next_tick_s += control_interval_s

            pending = [end for end in transition_end if math.isfinite(end)]

            if not live:
                if cursor >= len(order) and not held:
                    break  # transitions in flight don't extend the makespan
                targets = list(pending)
                if cursor < len(order):
                    targets.append(jobs[order[cursor]].start_time_s)
                # Ticks still fire while idle: that is when gating happens
                # (and how held jobs get their nodes woken).
                targets.append(next_tick_s)
                target = min(targets)
                bindings = []
                integrate([], target - time_s)
                time_s = max(time_s, target)
                continue

            rates, bindings = self._allocate(live, factors)

            dt = math.inf
            for flow, rate in zip(live, rates):
                if rate > 0:
                    dt = min(dt, flow.remaining_mb / rate)
            if cursor < len(order):
                dt = min(dt, jobs[order[cursor]].start_time_s - time_s)
            dt = min(dt, next_tick_s - time_s)
            for end in pending:
                dt = min(dt, end - time_s)
            if not math.isfinite(dt) or dt < 0:
                raise SimulationError(
                    "simulation stalled: live flows have zero rate and no "
                    "pending events"
                )

            integrate(rates, dt)
            for flow, rate in zip(live, rates):
                flow.remaining_mb -= rate * dt
            time_s += dt

            finished = [flow for flow in live if flow.done]
            if finished:
                live = [flow for flow in live if not flow.done]
                touched_jobs = set()
                for flow in finished:
                    phase_live_count[flow.job_index] -= 1
                    touched_jobs.add(flow.job_index)
                for index in touched_jobs:
                    if phase_live_count[index] == 0 and job_phase[index] is not None:
                        self._advance_job(
                            jobs, index, job_phase[index] + 1, live,
                            phase_live_count, job_phase, time_s, job_completion,
                        )

        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("sim.controlled_runs")
            telemetry.count("sim.events", events)
            telemetry.count("sim.control.ticks", ticks)
            telemetry.count("sim.control.gate_actions", gate_actions)
            telemetry.count("sim.control.ungate_actions", ungate_actions)
            telemetry.count("sim.control.freq_actions", freq_actions)
        return SimulationResult(
            makespan_s=time_s,
            energy_j=sum(node_energy),
            node_energy_j=tuple(node_energy),
            job_start_s=job_start,
            job_completion_s=job_completion,
            intervals=intervals,
            gated_node_seconds=gated_seconds,
            energy_saved_j=energy_saved,
        )

    # ---------------------------------------------------------- faulted loop
    def _run_faulted(
        self,
        jobs: Sequence[Job],
        policy,
        control_interval_s: float,
        max_events: int,
        faults,
        failure_policy,
        layout,
    ) -> SimulationResult:
        """The nemesis event loop: crashes, stragglers, degraded links.

        A superset of :meth:`_run_controlled` (the control policy is
        optional here) with a fault timeline interleaved into the event
        horizon:

        * a :class:`~repro.faults.schedule.NodeCrash` is a *forced gated
          transition with zero notice* — the node drops to the failure
          policy's standby residual instantly, and every in-flight job
          that owns it is killed and re-queued or shed per the
          :class:`~repro.faults.schedule.FailurePolicy`; recovery is a
          priced waking transition whose energy lands in
          ``recovery_energy_j``;
        * a :class:`~repro.faults.schedule.Straggler` multiplies the
          node's DVFS factor (capacity *and* power scale, like thermal
          throttling);
        * a :class:`~repro.faults.schedule.NetworkDegrade` scales the
          network capacities in max-min fair allocation.

        Fault node indices wrap modulo the cluster size (ring semantics,
        matching chained declustering), so one scenario spans designs of
        different sizes.  With a ``layout``, a crash that strands every
        copy of a partition raises
        :class:`~repro.errors.SimulationError` — the candidate is
        infeasible under the scenario; without one, jobs stranded by a
        never-recovering node are dropped and the trace continues.
        """
        import heapq

        from repro.faults.schedule import (
            FailurePolicy,
            NetworkDegrade,
            NodeCrash,
            Straggler,
        )
        from repro.policy.policies import (
            ClusterState,
            GateNode,
            SetFrequency,
            UngateNode,
        )

        if failure_policy is None:
            failure_policy = FailurePolicy()
        dynamic = policy is not None and not policy.is_static
        if dynamic and control_interval_s <= 0:
            raise SimulationError(
                f"control interval must be > 0, got {control_interval_s}"
            )
        model = policy.power_state_model() if dynamic else None
        fault_model = failure_policy.transitions

        num_nodes = self.pool.num_nodes
        roles = tuple(self.pool.node_role(n) for n in self.pool.node_ids())
        node_state = [ACTIVE] * num_nodes
        transition_end = [math.inf] * num_nodes
        factors = [1.0] * num_nodes
        node_energy = [0.0] * num_nodes
        gated_seconds = 0.0
        energy_saved = 0.0
        recovery_energy = 0.0
        intervals: list[Interval] = []

        # The fault timeline: every event contributes its onset (and,
        # where applicable, its offset/recovery) to the event horizon.
        timeline: list[tuple[float, str, object]] = []
        for event in faults.events:
            if isinstance(event, NodeCrash):
                timeline.append((event.at_s, "crash", event))
                if math.isfinite(event.recover_at_s):
                    timeline.append((event.recover_at_s, "recover", event))
            elif isinstance(event, Straggler):
                timeline.append((event.at_s, "straggle-on", event))
                timeline.append((event.end_s, "straggle-off", event))
            elif isinstance(event, NetworkDegrade):
                timeline.append((event.at_s, "net-on", event))
                timeline.append((event.end_s, "net-off", event))
            else:
                raise SimulationError(f"unknown fault event: {event!r}")
        timeline.sort(key=lambda entry: entry[0])
        fault_cursor = 0

        crashed: dict[int, float] = {}  # node -> scheduled recovery (inf = never)
        fault_waking: set[int] = set()
        stragglers: dict[int, list] = {}
        fault_mult = [1.0] * num_nodes
        degrades: list = []
        net_mult = 1.0
        survived = 0
        retried = 0
        dropped: list[str] = []
        attempts = [0] * len(jobs)
        retry_ready: list[tuple[float, int]] = []

        time_s = 0.0
        job_phase = [0] * len(jobs)
        phase_live_count = [0] * len(jobs)
        job_start: dict[str, float] = {}
        job_completion: dict[str, float] = {}
        order = sorted(range(len(jobs)), key=lambda i: jobs[i].start_time_s)
        cursor = 0
        live: list[_LiveFlow] = []
        held: list[int] = []
        node_sets: dict[int, frozenset[int]] = {}

        def needed_nodes(index: int) -> frozenset[int]:
            key = id(jobs[index].phases)
            nodes = node_sets.get(key)
            if nodes is None:
                nodes = node_sets[key] = self._job_nodes(jobs[index])
            return nodes

        def drop_job(index: int) -> None:
            dropped.append(jobs[index].name)
            job_phase[index] = None
            phase_live_count[index] = 0

        def integrate(rates: Sequence[float], dt: float) -> None:
            """Per-state energy; crashes and recoveries price separately."""
            nonlocal gated_seconds, energy_saved, recovery_energy
            if dt <= 0:
                return
            cpu_rates = [0.0] * num_nodes
            for flow, rate in zip(live, rates):
                for resource, coef in flow.spec.demands.items():
                    kind, _, node = resource.partition(":")
                    if kind == CPU:
                        cpu_rates[int(node)] += coef * rate
            utils = []
            powers = []
            for node_id in range(num_nodes):
                spec = self.pool.node_spec(node_id)
                state = node_state[node_id]
                if state == ACTIVE:
                    effective = self._dvfs_spec(
                        node_id, factors[node_id] * fault_mult[node_id]
                    )
                    util = effective.utilization(cpu_rates[node_id])
                    watts = effective.power_model.power(util)
                else:
                    util = 0.0
                    if node_id in crashed:
                        # A crashed node draws the failure model's standby
                        # residual.  No savings credit: a crash is not a
                        # policy decision.
                        watts = fault_model.gated_power_w(spec)
                    elif node_id in fault_waking:
                        watts = (
                            fault_model.transition_power_fraction
                            * spec.peak_power_w
                        )
                        recovery_energy += watts * dt
                    elif state == GATED:
                        watts = model.gated_power_w(spec)
                        gated_seconds += dt
                        energy_saved += (spec.idle_power_w - watts) * dt
                    else:  # policy-driven gating or waking
                        watts = (
                            model.transition_power_fraction * spec.peak_power_w
                        )
                        energy_saved += (spec.idle_power_w - watts) * dt
                utils.append(util)
                powers.append(watts)
                node_energy[node_id] += watts * dt
            if self.record_intervals:
                intervals.append(
                    Interval(
                        start_s=time_s,
                        end_s=time_s + dt,
                        node_utilization=tuple(utils),
                        node_power_w=tuple(powers),
                        flow_names=tuple(flow.spec.name for flow in live),
                        flow_bindings=tuple(bindings),
                        flow_jobs=tuple(flow.job_name for flow in live),
                    )
                )

        def apply_due_faults() -> None:
            nonlocal fault_cursor, net_mult, survived, retried, live
            while (
                fault_cursor < len(timeline)
                and timeline[fault_cursor][0] <= time_s + _COMPLETION_EPS
            ):
                _, kind, event = timeline[fault_cursor]
                fault_cursor += 1
                if kind == "crash":
                    survived += 1
                    node = event.node % num_nodes
                    prior = crashed.get(node)
                    crashed[node] = (
                        event.recover_at_s
                        if prior is None
                        else max(prior, event.recover_at_s)
                    )
                    # Forced gated transition with zero notice: whatever
                    # state the node was in, it is off *now*.
                    node_state[node] = GATED
                    transition_end[node] = math.inf
                    fault_waking.discard(node)
                    if layout is not None:
                        up = [n for n in range(num_nodes) if n not in crashed]
                        layout.require_coverage(
                            up,
                            context=(
                                f"after node {node} crashed at "
                                f"t={time_s:g}s"
                            ),
                        )
                    # Kill every in-flight job that owns the dead node —
                    # a running job owns every node any of its phases
                    # demands (the barrier rule).
                    victims = sorted(
                        {
                            flow.job_index
                            for flow in live
                            if node in needed_nodes(flow.job_index)
                        }
                    )
                    if victims:
                        victim_set = set(victims)
                        live = [
                            flow
                            for flow in live
                            if flow.job_index not in victim_set
                        ]
                        for index in victims:
                            phase_live_count[index] = 0
                            job_phase[index] = 0  # progress is lost
                            if (
                                failure_policy.retries_enabled
                                and attempts[index] < failure_policy.max_retries
                            ):
                                attempts[index] += 1
                                retried += 1
                                heapq.heappush(
                                    retry_ready,
                                    (
                                        time_s
                                        + failure_policy.backoff_delay_s(
                                            jobs[index].name, attempts[index]
                                        ),
                                        index,
                                    ),
                                )
                            else:
                                drop_job(index)
                elif kind == "recover":
                    node = event.node % num_nodes
                    until = crashed.get(node)
                    # A later crash may have extended the outage; only the
                    # recovery that reaches the scheduled time revives.
                    if until is not None and until <= time_s + _COMPLETION_EPS:
                        del crashed[node]
                        if fault_model.boot_s > 0:
                            node_state[node] = WAKING
                            transition_end[node] = time_s + fault_model.boot_s
                            fault_waking.add(node)
                        else:
                            node_state[node] = ACTIVE
                            transition_end[node] = math.inf
                elif kind == "straggle-on":
                    survived += 1
                    node = event.node % num_nodes
                    stragglers.setdefault(node, []).append(event)
                    fault_mult[node] = math.prod(
                        s.slowdown for s in stragglers[node]
                    )
                elif kind == "straggle-off":
                    node = event.node % num_nodes
                    group = stragglers.get(node, [])
                    if event in group:
                        group.remove(event)
                    fault_mult[node] = (
                        math.prod(s.slowdown for s in group) if group else 1.0
                    )
                elif kind == "net-on":
                    survived += 1
                    degrades.append(event)
                    net_mult = math.prod(d.factor for d in degrades)
                else:  # net-off
                    if event in degrades:
                        degrades.remove(event)
                    net_mult = (
                        math.prod(d.factor for d in degrades)
                        if degrades
                        else 1.0
                    )

        last_busy_s = 0.0
        next_tick_s = control_interval_s if dynamic else math.inf
        bindings: Sequence[str] = []
        events = 0
        # Telemetry accumulates in locals and flushes once at the return.
        ticks = 0
        gate_actions = 0
        ungate_actions = 0
        freq_actions = 0

        while cursor < len(order) or live or held or retry_ready:
            events += 1
            if events > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; simulation stalled?"
                )

            # Complete power-state transitions that are due.
            for node_id in range(num_nodes):
                if transition_end[node_id] <= time_s + _COMPLETION_EPS:
                    node_state[node_id] = (
                        GATED if node_state[node_id] == GATING else ACTIVE
                    )
                    transition_end[node_id] = math.inf
                    fault_waking.discard(node_id)

            apply_due_faults()

            # Retry backoffs that have elapsed re-enter the queue.
            while (
                retry_ready
                and retry_ready[0][0] <= time_s + _COMPLETION_EPS
            ):
                _, index = heapq.heappop(retry_ready)
                held.append(index)

            # Arrivals join the held queue; ``job_start_s`` stays the
            # arrival, so outage waits land in response times.
            while (
                cursor < len(order)
                and jobs[order[cursor]].start_time_s <= time_s + _COMPLETION_EPS
            ):
                index = order[cursor]
                cursor += 1
                job_start[jobs[index].name] = max(
                    time_s, jobs[index].start_time_s
                )
                held.append(index)

            # Resolve held jobs: stranded ones (a needed node is down and
            # will never return) are shed; ready ones admit, arrival order.
            if held:
                still_held: list[int] = []
                for index in held:
                    needed = needed_nodes(index)
                    if any(crashed.get(n) == math.inf for n in needed):
                        drop_job(index)
                    elif all(node_state[n] == ACTIVE for n in needed):
                        self._advance_job(
                            jobs, index, 0, live, phase_live_count,
                            job_phase, time_s, job_completion,
                        )
                    else:
                        still_held.append(index)
                held = still_held

            if live or held:
                last_busy_s = time_s

            # Control tick (dynamic policies only): identical to the
            # controlled loop, except a crashed node can be neither gated
            # (it is not active) nor woken (rebooting is the nemesis's
            # call, not the policy's).
            if dynamic and next_tick_s <= time_s + _COMPLETION_EPS:
                ticks += 1
                effective = [
                    factors[n] * fault_mult[n] for n in range(num_nodes)
                ]
                if live:
                    rates, bindings = self._allocate(
                        live, effective, net_factor=net_mult
                    )
                else:
                    rates, bindings = [], []
                cpu_rates = [0.0] * num_nodes
                for flow, rate in zip(live, rates):
                    for resource, coef in flow.spec.demands.items():
                        kind, _, node = resource.partition(":")
                        if kind == CPU:
                            cpu_rates[int(node)] += coef * rate
                loads = tuple(
                    min(
                        1.0,
                        cpu_rates[n]
                        / (
                            self.pool.node_spec(n).cpu_bandwidth_mbps
                            * effective[n]
                        ),
                    )
                    if node_state[n] == ACTIVE
                    else 0.0
                    for n in range(num_nodes)
                )
                snapshot = ClusterState(
                    time_s=time_s,
                    node_roles=roles,
                    node_states=tuple(node_state),
                    node_utilization=loads,
                    frequency_factors=tuple(factors),
                    queue_depth=len({flow.job_index for flow in live})
                    + len(held),
                    held_jobs=len(held),
                    idle_s=time_s - last_busy_s,
                )
                demanded = frozenset(
                    node
                    for flow in live
                    for node in needed_nodes(flow.job_index)
                )
                for action in policy.observe(snapshot):
                    if isinstance(action, GateNode):
                        node_id = action.node_id
                        if (
                            0 <= node_id < num_nodes
                            and node_state[node_id] == ACTIVE
                            and node_id not in demanded
                        ):
                            gate_actions += 1
                            if model.shutdown_s > 0:
                                node_state[node_id] = GATING
                                transition_end[node_id] = (
                                    time_s + model.shutdown_s
                                )
                            else:
                                node_state[node_id] = GATED
                    elif isinstance(action, UngateNode):
                        node_id = action.node_id
                        if (
                            0 <= node_id < num_nodes
                            and node_state[node_id] == GATED
                            and node_id not in crashed
                        ):
                            ungate_actions += 1
                            if model.boot_s > 0:
                                node_state[node_id] = WAKING
                                transition_end[node_id] = time_s + model.boot_s
                            else:
                                node_state[node_id] = ACTIVE
                    elif isinstance(action, SetFrequency):
                        if 0 <= action.node_id < num_nodes:
                            freq_actions += 1
                            factors[action.node_id] = action.frequency_factor
                    else:
                        raise SimulationError(
                            f"unknown control action: {action!r}"
                        )
                while next_tick_s <= time_s + _COMPLETION_EPS:
                    next_tick_s += control_interval_s

            pending = [end for end in transition_end if math.isfinite(end)]

            if not live:
                if cursor >= len(order) and not held and not retry_ready:
                    break  # nothing left; trailing faults don't extend the run
                targets = list(pending)
                if cursor < len(order):
                    targets.append(jobs[order[cursor]].start_time_s)
                if dynamic:
                    targets.append(next_tick_s)
                if fault_cursor < len(timeline):
                    targets.append(timeline[fault_cursor][0])
                if retry_ready:
                    targets.append(retry_ready[0][0])
                if not targets:
                    raise SimulationError(
                        "simulation stalled: jobs are waiting on nodes "
                        "that will never become active"
                    )
                target = min(targets)
                bindings = []
                integrate([], target - time_s)
                time_s = max(time_s, target)
                continue

            rates, bindings = self._allocate(
                live,
                [factors[n] * fault_mult[n] for n in range(num_nodes)],
                net_factor=net_mult,
            )

            dt = math.inf
            for flow, rate in zip(live, rates):
                if rate > 0:
                    dt = min(dt, flow.remaining_mb / rate)
            if cursor < len(order):
                dt = min(dt, jobs[order[cursor]].start_time_s - time_s)
            if dynamic:
                dt = min(dt, next_tick_s - time_s)
            for end in pending:
                dt = min(dt, end - time_s)
            if fault_cursor < len(timeline):
                dt = min(dt, timeline[fault_cursor][0] - time_s)
            if retry_ready:
                dt = min(dt, retry_ready[0][0] - time_s)
            if not math.isfinite(dt) or dt < 0:
                raise SimulationError(
                    "simulation stalled: live flows have zero rate and no "
                    "pending events"
                )

            integrate(rates, dt)
            for flow, rate in zip(live, rates):
                flow.remaining_mb -= rate * dt
            time_s += dt

            finished = [flow for flow in live if flow.done]
            if finished:
                live = [flow for flow in live if not flow.done]
                touched_jobs = set()
                for flow in finished:
                    phase_live_count[flow.job_index] -= 1
                    touched_jobs.add(flow.job_index)
                for index in touched_jobs:
                    if phase_live_count[index] == 0 and job_phase[index] is not None:
                        self._advance_job(
                            jobs, index, job_phase[index] + 1, live,
                            phase_live_count, job_phase, time_s, job_completion,
                        )

        if not job_completion:
            raise SimulationError(
                "no job survived the fault schedule: all "
                f"{len(dropped)} submitted jobs were dropped"
            )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("sim.faulted_runs")
            telemetry.count("sim.events", events)
            telemetry.count("sim.faults.onsets", survived)
            telemetry.count("sim.faults.retried_jobs", retried)
            telemetry.count("sim.faults.dropped_jobs", len(dropped))
            if dynamic:
                telemetry.count("sim.control.ticks", ticks)
                telemetry.count("sim.control.gate_actions", gate_actions)
                telemetry.count("sim.control.ungate_actions", ungate_actions)
                telemetry.count("sim.control.freq_actions", freq_actions)
        return SimulationResult(
            makespan_s=time_s,
            energy_j=sum(node_energy),
            node_energy_j=tuple(node_energy),
            job_start_s=job_start,
            job_completion_s=job_completion,
            intervals=intervals,
            gated_node_seconds=gated_seconds,
            energy_saved_j=energy_saved,
            recovery_energy_j=recovery_energy,
            retried_jobs=retried,
            dropped_jobs=len(dropped),
            dropped_job_names=tuple(dropped),
            faults_survived=survived,
        )

    def _job_nodes(self, job: Job) -> frozenset[int]:
        """Every node id any flow of ``job`` demands (any resource kind)."""
        return frozenset(
            int(resource.partition(":")[2])
            for phase in job.phases
            for flow in phase.flows
            for resource in flow.demands
        )

    def _dvfs_spec(self, node_id: int, factor: float):
        """The node's spec at a policy-set DVFS factor (memoized).

        The factor composes with whatever DVFS state the candidate baked
        into the spec: linear CPU-bandwidth scaling, cubic dynamic power
        (:func:`~repro.hardware.dvfs.dvfs_variant`).
        """
        if factor == 1.0:
            return self.pool.node_spec(node_id)
        cache = getattr(self, "_dvfs_cache", None)
        if cache is None:
            cache = self._dvfs_cache = {}
        key = (node_id, factor)
        spec = cache.get(key)
        if spec is None:
            from repro.hardware.dvfs import dvfs_variant

            spec = cache[key] = dvfs_variant(self.pool.node_spec(node_id), factor)
        return spec

    # ----------------------------------------------------------------- helpers
    def _validate(self, jobs: Sequence[Job]) -> None:
        if not jobs:
            raise SimulationError("no jobs to run")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate job names: {names}")
        for job in jobs:
            for phase in job.phases:
                for flow in phase.flows:
                    for resource in flow.demands:
                        if resource not in self.pool:
                            raise SimulationError(
                                f"job {job.name!r} flow {flow.name!r} references "
                                f"unknown resource {resource!r}"
                            )

    def _advance_job(
        self,
        jobs: Sequence[Job],
        job_index: int,
        start_phase: int,
        live: list[_LiveFlow],
        phase_live_count: list[int],
        job_phase: list,
        time_s: float,
        job_completion: dict[str, float],
    ) -> None:
        """Admit phases from ``start_phase`` on, skipping all-empty ones."""
        phase_index = start_phase
        while True:
            if phase_index >= len(jobs[job_index].phases):
                job_completion[jobs[job_index].name] = time_s
                job_phase[job_index] = None
                return
            self._admit_phase(jobs, job_index, phase_index, live, phase_live_count, job_phase)
            if phase_live_count[job_index] > 0:
                return
            phase_index += 1

    def _admit_phase(
        self,
        jobs: Sequence[Job],
        job_index: int,
        phase_index: int,
        live: list[_LiveFlow],
        phase_live_count: list[int],
        job_phase: list,
    ) -> None:
        job_phase[job_index] = phase_index
        count = 0
        for flow in jobs[job_index].phases[phase_index].flows:
            if flow.volume_mb > 0:
                live.append(
                    _LiveFlow(flow, job_index, phase_index, jobs[job_index].name)
                )
                count += 1
        phase_live_count[job_index] = count

    def _allocate(
        self,
        live: Sequence[_LiveFlow],
        factors: Sequence[float] | None = None,
        net_factor: float = 1.0,
    ) -> tuple[list[float], list[str]]:
        capacities = self.pool.capacities()
        if factors is not None:
            # Policy-set DVFS: CPU capacity scales linearly with the factor.
            for node_id, factor in enumerate(factors):
                if factor != 1.0:
                    capacities[f"{CPU}:{node_id}"] *= factor
        network_flows = sum(
            1
            for flow in live
            if any(self.pool.is_network(r) for r in flow.spec.demands)
        )
        # Fault-injected degradation composes with switch contention.
        efficiency = self.switch.efficiency(network_flows) * net_factor
        if efficiency < 1.0:
            for name in capacities:
                if self.pool.is_network(name):
                    capacities[name] *= efficiency
        return max_min_fair_allocation(
            [flow.spec.demands for flow in live], capacities
        )

    def _integrate(
        self,
        live: Sequence[_LiveFlow],
        rates: Sequence[float],
        bindings: Sequence[str],
        time_s: float,
        dt: float,
        node_energy: list[float],
        intervals: list[Interval],
    ) -> None:
        if dt <= 0:
            return
        cpu_rates = [0.0] * self.pool.num_nodes
        for flow, rate in zip(live, rates):
            for resource, coef in flow.spec.demands.items():
                kind, _, node = resource.partition(":")
                if kind == CPU:
                    cpu_rates[int(node)] += coef * rate
        utils = []
        powers = []
        for node_id in self.pool.node_ids():
            spec = self.pool.node_spec(node_id)
            util = spec.utilization(cpu_rates[node_id])
            watts = spec.power_model.power(util)
            utils.append(util)
            powers.append(watts)
            node_energy[node_id] += watts * dt
        if self.record_intervals:
            intervals.append(
                Interval(
                    start_s=time_s,
                    end_s=time_s + dt,
                    node_utilization=tuple(utils),
                    node_power_w=tuple(powers),
                    flow_names=tuple(flow.spec.name for flow in live),
                    flow_bindings=tuple(bindings),
                    flow_jobs=tuple(flow.job_name for flow in live),
                )
            )
