"""Workload description consumed by the simulator: flows, phases, jobs.

* :class:`FlowSpec` — one pipeline on one node (e.g. "scan my ORDERS
  partition, filter, hash-partition, send"), with a total volume in
  reference MB and per-resource demand coefficients.
* :class:`Phase` — a set of flows that run together; the phase ends when
  *all* of its flows complete (a barrier — P-store's build phase must
  finish on every node before any node may start probing).
* :class:`Job` — an ordered list of phases (e.g. build then probe), with a
  start time.  Multiple jobs model the paper's concurrent-query
  experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError

__all__ = ["FlowSpec", "Phase", "Job"]


@dataclass(frozen=True)
class FlowSpec:
    """A constant-proportions pipeline with a fixed amount of work.

    ``volume_mb`` is measured in *reference units*: the pre-filter size of
    the data the pipeline consumes.  ``demands`` maps resource names (see
    :mod:`repro.simulator.resources`) to usage per reference MB/s.
    """

    name: str
    volume_mb: float
    demands: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.volume_mb < 0:
            raise ConfigurationError(f"flow {self.name!r}: negative volume {self.volume_mb}")
        if self.volume_mb > 0 and not self.demands:
            raise ConfigurationError(f"flow {self.name!r} has volume but no demands")
        for resource, coef in self.demands.items():
            if coef <= 0:
                raise ConfigurationError(
                    f"flow {self.name!r}: coefficient on {resource!r} must be > 0, got {coef}"
                )


@dataclass(frozen=True)
class Phase:
    """Flows that execute concurrently and barrier-complete together."""

    name: str
    flows: tuple[FlowSpec, ...]

    def __post_init__(self) -> None:
        if not self.flows:
            raise ConfigurationError(f"phase {self.name!r} has no flows")

    @property
    def total_volume_mb(self) -> float:
        return sum(flow.volume_mb for flow in self.flows)


@dataclass(frozen=True)
class Job:
    """An ordered sequence of phases (one query execution)."""

    name: str
    phases: tuple[Phase, ...]
    start_time_s: float = 0.0
    metadata: Mapping[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(f"job {self.name!r} has no phases")
        if self.start_time_s < 0:
            raise ConfigurationError(
                f"job {self.name!r}: negative start time {self.start_time_s}"
            )

    @property
    def total_volume_mb(self) -> float:
        return sum(phase.total_volume_mb for phase in self.phases)
