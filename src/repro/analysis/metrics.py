"""Derived metrics over simulation results and model predictions."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import ModelError, SimulationError
from repro.simulator.engine import SimulationResult
from repro.workloads.queries import JoinWorkloadSpec

__all__ = [
    "EnergySummary",
    "energy_summary",
    "joules_per_qualifying_mb",
    "attribute_energy_by_job",
]


@dataclass(frozen=True)
class EnergySummary:
    """Headline numbers of one run, in the units the paper reports."""

    makespan_s: float
    energy_j: float
    average_power_w: float

    @property
    def energy_kj(self) -> float:
        return self.energy_j / 1000.0

    @property
    def edp_js(self) -> float:
        return self.energy_j * self.makespan_s


def energy_summary(result: SimulationResult) -> EnergySummary:
    """Summarize a simulator run."""
    return EnergySummary(
        makespan_s=result.makespan_s,
        energy_j=result.energy_j,
        average_power_w=result.average_power_w,
    )


def joules_per_qualifying_mb(
    energy_j: float, workload: JoinWorkloadSpec
) -> float:
    """Energy per MB of qualifying (post-predicate) data processed.

    A size-independent efficiency metric useful when comparing joins at
    different selectivities.
    """
    qualifying = workload.qualifying_build_mb + workload.qualifying_probe_mb
    if qualifying <= 0:
        raise ModelError("workload has no qualifying data")
    return energy_j / qualifying


def attribute_energy_by_job(result: SimulationResult) -> dict[str, float]:
    """Split cluster energy across concurrent jobs by flow-time share.

    Each interval's energy is divided among the jobs with live flows in it,
    weighted by how many flows each contributes — the natural accounting
    for the paper's concurrent-join experiments ("what did each of the 4
    joins cost?").  Intervals with no live flows (pure idle gaps between
    arrivals) are attributed to ``"(idle)"``.  The attribution sums to the
    run's total energy exactly.
    """
    if not result.intervals:
        raise SimulationError(
            "result has no recorded intervals; run with record_intervals=True"
        )
    attribution: dict[str, float] = defaultdict(float)
    for interval in result.intervals:
        if not interval.flow_jobs:
            attribution["(idle)"] += interval.energy_j
            continue
        share = interval.energy_j / len(interval.flow_jobs)
        for job_name in interval.flow_jobs:
            attribution[job_name] += share
    return dict(attribution)
