"""ASCII rendering of the paper's tables and figures.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output consistent and legible in a terminal.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.edp import NormalizedPoint

__all__ = ["render_table", "render_series", "render_normalized_curve"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def render_series(
    name: str,
    points: Sequence[tuple[str, float]],
    unit: str = "",
) -> str:
    """One labelled series, e.g. a figure's single line of data."""
    suffix = f" {unit}" if unit else ""
    body = ", ".join(f"{label}={value:.3g}{suffix}" for label, value in points)
    return f"{name}: {body}"


def render_normalized_curve(
    title: str, points: Sequence[NormalizedPoint]
) -> str:
    """The paper's normalized energy-vs-performance plot, as a table.

    Adds the constant-EDP reference column and flags points below the
    curve, which is the property every figure discussion revolves around.
    """
    rows = []
    for point in points:
        rows.append(
            (
                point.label,
                f"{point.performance:.3f}",
                f"{point.energy:.3f}",
                f"{point.performance:.3f}",  # constant-EDP energy at this perf
                f"{point.edp_ratio:.3f}",
                "below" if point.below_edp_curve else "above",
            )
        )
    return render_table(
        headers=("design", "perf", "energy", "edp-curve", "edp-ratio", "vs EDP"),
        rows=rows,
        title=title,
    )


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
