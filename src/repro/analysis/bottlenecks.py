"""Bottleneck attribution: where does execution time actually go?

Section 4.1 classifies the causes of sub-linear speedup — hardware
bottlenecks (network, disk), the broadcast's algorithmic bottleneck, data
skew.  The fluid simulator records, for every interval, which resource
capped each flow; this module aggregates those bindings into the numbers
the paper quotes, e.g. *"Query 12 spends 48% of the query time network
bottlenecked during repartitioning"*.

:func:`derive_query_profile` closes the loop with the Section 3 substrate:
it converts a simulated P-store run into the black-box
local-fraction/shuffle characterization the Vertica-like model consumes —
the "initial hardware calibration data and query optimizer information" of
the Section 6 design procedure.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dbms.vertica_like import QueryProfile
from repro.errors import SimulationError
from repro.simulator.engine import SimulationResult
from repro.simulator.resources import CPU, DISK, NIC_IN, NIC_OUT

__all__ = [
    "bottleneck_breakdown",
    "network_bound_fraction",
    "derive_query_profile",
]

_KINDS = (CPU, DISK, NIC_IN, NIC_OUT)


def bottleneck_breakdown(result: SimulationResult) -> dict[str, float]:
    """Fraction of flow-time spent bound by each resource kind.

    Flow-time weights each interval by how many flows it carried, so a
    phase where eight nodes wait on the network counts eight times the
    flow-time of a single straggler.  Fractions sum to 1.
    """
    if not result.intervals:
        raise SimulationError(
            "result has no recorded intervals; run with record_intervals=True"
        )
    totals: dict[str, float] = defaultdict(float)
    for interval in result.intervals:
        for binding in interval.flow_bindings:
            kind = binding.partition(":")[0]
            totals[kind] += interval.duration_s
    grand_total = sum(totals.values())
    if grand_total <= 0:
        raise SimulationError("no flow-time recorded (all phases empty?)")
    return {kind: totals.get(kind, 0.0) / grand_total for kind in _KINDS}


def network_bound_fraction(result: SimulationResult) -> float:
    """The paper's headline per-query number: share of flow-time that was
    network-bound (inbound or outbound NIC)."""
    breakdown = bottleneck_breakdown(result)
    return breakdown[NIC_IN] + breakdown[NIC_OUT]


def derive_query_profile(
    result: SimulationResult,
    name: str,
    reference_nodes: int,
    shuffle_scaling: float = 0.34,
) -> QueryProfile:
    """Black-box characterization of a simulated run.

    * ``local_fraction`` = 1 − network-bound flow-time fraction,
    * ``reference_time_s`` = the run's makespan,
    * stage utilizations from the run's mean node utilization.

    The returned profile plugs straight into
    :class:`~repro.dbms.vertica_like.VerticaLikeDBMS`, so a P-store
    measurement can drive the same size-sweep analyses as the paper's
    published splits.
    """
    if reference_nodes <= 0:
        raise SimulationError(f"reference_nodes must be > 0, got {reference_nodes}")
    network_fraction = network_bound_fraction(result)
    mean_util = sum(
        result.mean_utilization(node)
        for node in range(len(result.node_energy_j))
    ) / len(result.node_energy_j)
    return QueryProfile(
        name=name,
        local_fraction=1.0 - network_fraction,
        reference_nodes=reference_nodes,
        reference_time_s=result.makespan_s,
        shuffle_scaling=shuffle_scaling,
        local_utilization=min(1.0, max(0.01, mean_util)),
        shuffle_utilization=min(1.0, max(0.01, mean_util * 0.6)),
    )
