"""Exporting experiment results and trade-off curves to JSON/CSV.

A reproduction harness is only useful if its outputs can leave the Python
process: these helpers serialize :class:`ExperimentResult` objects (claims
included) and normalized curves into plain structures, JSON strings, or
CSV text that plotting scripts and CI dashboards can consume.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Sequence

from repro.core.edp import NormalizedPoint
from repro.errors import ReproError
from repro.experiments.base import ExperimentResult
from repro.search.engine import SearchResult
from repro.search.pareto import knee_point

__all__ = [
    "curve_to_rows",
    "curve_to_csv",
    "experiment_to_dict",
    "experiment_to_json",
    "experiments_summary_csv",
    "optimization_to_json",
    "search_to_rows",
    "search_to_dict",
    "frontier_to_csv",
    "search_to_json",
    "tco_frontier_csv",
    "telemetry_to_dict",
    "telemetry_to_json",
    "trajectory_to_csv",
    "trajectory_to_rows",
]


def curve_to_rows(points: Sequence[NormalizedPoint]) -> list[dict[str, Any]]:
    """Normalized curve as a list of plain dicts (one per design point)."""
    return [
        {
            "label": point.label,
            "performance": point.performance,
            "energy": point.energy,
            "edp_ratio": point.edp_ratio,
            "below_edp": point.below_edp_curve,
        }
        for point in points
    ]


def curve_to_csv(points: Sequence[NormalizedPoint]) -> str:
    """Normalized curve as CSV text with a header row."""
    if not points:
        raise ReproError("cannot export an empty curve")
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer,
        fieldnames=["label", "performance", "energy", "edp_ratio", "below_edp"],
    )
    writer.writeheader()
    for row in curve_to_rows(points):
        writer.writerow(row)
    return buffer.getvalue()


_SEARCH_FIELDS = [
    "label",
    "num_beefy",
    "num_wimpy",
    "num_nodes",
    "beefy_frequency_factor",
    "wimpy_frequency_factor",
    "mode",
    "time_s",
    "energy_j",
    "edp",
    # TCO pricing of cost-model-configured evaluations (null without a
    # CostModel attached to the evaluator or study)
    "carbon_g",
    "price_usd",
    "feasible",
    "on_frontier",
    # queueing response times of timed-trace evaluations (null on the
    # weights-only path, which never simulates arrival times)
    "response_mean_s",
    "response_p95_s",
    "response_p99_s",
    "response_max_s",
    # dynamic cluster control (null for bare design candidates): the
    # policy label and the replay's gating/energy-saving totals
    "policy",
    "gated_node_seconds",
    "energy_saved_j",
    # degraded-mode evaluations (null on healthy paths): response times
    # measured under fault injection, plus the run's failure accounting
    "degraded_response_mean_s",
    "degraded_response_p95_s",
    "degraded_response_p99_s",
    "degraded_response_max_s",
    "recovery_energy_j",
    "retried_jobs",
    "dropped_jobs",
    "faults_survived",
]


def search_to_rows(
    result: SearchResult, frontier_labels: set[str] | None = None
) -> list[dict[str, Any]]:
    """One plain dict per searched design point (grid order).

    Infeasible points are included with null time/energy so coverage is
    visible downstream; frontier membership is flagged per row.  Callers
    that already extracted the frontier can pass its labels to avoid
    recomputing it.
    """
    if frontier_labels is None:
        frontier_labels = {point.label for point in result.pareto_frontier()}
    rows = []
    for point in result.points:
        candidate = point.candidate
        latency = point.latency
        degraded = getattr(point, "degraded_latency", None)
        rows.append(
            {
                "label": point.label,
                "num_beefy": candidate.num_beefy,
                "num_wimpy": candidate.num_wimpy,
                "num_nodes": candidate.num_nodes,
                # resolved per-type DVFS states (what the evaluator priced),
                # not the raw cluster-wide field a per-type override hides
                "beefy_frequency_factor": candidate.effective_beefy_frequency,
                "wimpy_frequency_factor": candidate.effective_wimpy_frequency,
                "mode": candidate.mode.value if candidate.mode is not None else "",
                "time_s": point.time_s if point.feasible else None,
                "energy_j": point.energy_j if point.feasible else None,
                "edp": point.edp if point.feasible else None,
                "carbon_g": getattr(point, "carbon_g", None),
                "price_usd": getattr(point, "price_usd", None),
                "feasible": point.feasible,
                "on_frontier": point.label in frontier_labels,
                "response_mean_s": latency.mean_s if latency else None,
                "response_p95_s": latency.p95_s if latency else None,
                "response_p99_s": latency.p99_s if latency else None,
                "response_max_s": latency.max_s if latency else None,
                "policy": getattr(point, "policy", None),
                "gated_node_seconds": getattr(point, "gated_node_seconds", None),
                "energy_saved_j": getattr(point, "energy_saved_j", None),
                "degraded_response_mean_s": degraded.mean_s if degraded else None,
                "degraded_response_p95_s": degraded.p95_s if degraded else None,
                "degraded_response_p99_s": degraded.p99_s if degraded else None,
                "degraded_response_max_s": degraded.max_s if degraded else None,
                "recovery_energy_j": getattr(point, "recovery_energy_j", None),
                "retried_jobs": getattr(point, "retried_jobs", None),
                "dropped_jobs": getattr(point, "dropped_jobs", None),
                "faults_survived": getattr(point, "faults_survived", None),
            }
        )
    return rows


def frontier_to_csv(result: SearchResult, frontier_only: bool = True) -> str:
    """Search results as CSV text (by default just the Pareto frontier)."""
    rows = search_to_rows(result)
    if frontier_only:
        rows = [row for row in rows if row["on_frontier"]]
    if not rows:
        raise ReproError("no design points to export")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_SEARCH_FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def tco_frontier_csv(
    result: SearchResult,
    objectives: Sequence = ("time_s", "energy_j", "price_usd", "carbon_g"),
) -> str:
    """The multi-objective (TCO) frontier as CSV text.

    Exports the Pareto frontier under ``objectives`` — by default the
    full four-axis time/energy/price/carbon trade — with the same
    columns as :func:`frontier_to_csv`, so downstream consumers read
    both exports identically.  Frontier membership (``on_frontier``) is
    computed under the same objectives.  Requires cost-model-priced
    points when a cost axis is selected.
    """
    frontier = result.pareto_frontier(objectives=objectives)
    if not frontier:
        raise ReproError("no design points to export")
    labels = {point.label for point in frontier}
    rows = [
        row
        for row in search_to_rows(result, frontier_labels=labels)
        if row["on_frontier"]
    ]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_SEARCH_FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def search_to_dict(result: SearchResult) -> dict[str, Any]:
    """Full search outcome — points, frontier, selections — as a dict."""
    feasible = result.feasible_points
    frontier = result.pareto_frontier()
    frontier_labels = {point.label for point in frontier}
    payload: dict[str, Any] = {
        # the "query" key predates the Workload protocol; it now carries
        # the workload's name (identical for single-join searches)
        "query": result.workload.name,
        "workload": result.workload.name,
        "num_points": len(result.points),
        "num_feasible": len(feasible),
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "workers_used": result.workers_used,
        "query_evaluations": result.query_evaluations,
        "points": search_to_rows(result, frontier_labels),
        "frontier": [point.label for point in frontier],
    }
    if feasible:
        # knee_point over the frontier avoids re-deriving it from scratch
        # (a frontier is its own Pareto set).
        payload["knee"] = knee_point(frontier).label
        payload["edp_optimal"] = result.edp_optimal().label
    return payload


def search_to_json(result: SearchResult, indent: int | None = 2) -> str:
    """:func:`search_to_dict`, serialized."""
    return json.dumps(search_to_dict(result), indent=indent)


_TRAJECTORY_FIELDS = [
    "batch",
    "rung",
    "fidelity",
    "candidates",
    "fresh_query_evaluations",
    "archive_size",
    "frontier_size",
    "best_edp",
    "knee_label",
]


def trajectory_to_rows(result) -> list[dict[str, Any]]:
    """An optimization's batches as plain dicts (one per batch).

    ``result`` is an :class:`~repro.study.OptimizationResult` (or
    anything exposing ``trajectory``); each row is the evaluations-spent
    vs frontier-quality state after one optimizer batch.
    """
    return [
        {field: getattr(point, field) for field in _TRAJECTORY_FIELDS}
        for point in result.trajectory
    ]


def trajectory_to_csv(result) -> str:
    """The evaluations-vs-frontier-quality curve as CSV text."""
    rows = trajectory_to_rows(result)
    if not rows:
        raise ReproError("cannot export an empty optimization trajectory")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_TRAJECTORY_FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def optimization_to_json(result, indent: int | None = 2) -> str:
    """Full optimization outcome: search payload + optimizer metadata.

    The ``points``/``frontier``/selection keys match
    :func:`search_to_json` over the archive, so downstream consumers of
    sweep exports read optimization exports unchanged; ``optimizer``,
    ``budget``, ``stop_reason``, and ``trajectory`` are added on top.
    """
    payload = search_to_dict(result.search)
    payload["optimizer"] = result.optimizer_name
    payload["budget"] = result.budget
    payload["stop_reason"] = result.stop_reason
    payload["fresh_query_evaluations"] = result.fresh_query_evaluations
    payload["trajectory"] = trajectory_to_rows(result)
    return json.dumps(payload, indent=indent)


def telemetry_to_dict(source=None) -> dict[str, Any]:
    """A telemetry registry or snapshot as a JSON-safe dict.

    ``source`` is a :class:`~repro.telemetry.Telemetry`, a
    :class:`~repro.telemetry.TelemetrySnapshot`, or ``None`` for the
    active registry.  Span tree paths flatten to ``"/"``-joined strings
    (depth-first order preserved) with per-row call counts, wall time,
    and derived self time; the :func:`~repro.telemetry.attribution`
    summary rides along so a dashboard can assert coverage without
    re-deriving it.
    """
    from repro.telemetry import get_telemetry
    from repro.telemetry.report import attribution, span_rows

    if source is None:
        source = get_telemetry()
    snap = source.snapshot() if hasattr(source, "snapshot") else source
    return {
        "counters": {name: snap.counters[name] for name in sorted(snap.counters)},
        "gauges": {name: snap.gauges[name] for name in sorted(snap.gauges)},
        "spans": [
            {
                "path": "/".join(row["path"]),
                "calls": row["calls"],
                "total_s": row["total_s"],
                "self_s": row["self_s"],
            }
            for row in span_rows(snap)
        ],
        "attribution": attribution(snap),
    }


def telemetry_to_json(source=None, indent: int | None = 2) -> str:
    """:func:`telemetry_to_dict`, serialized."""
    return json.dumps(telemetry_to_dict(source), indent=indent)


def experiment_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """JSON-safe summary of one experiment (data payloads are elided;
    claims, title, and the rendered text are preserved)."""
    return {
        "id": result.experiment_id,
        "title": result.title,
        "all_claims_hold": result.all_claims_hold,
        "claims": [
            {
                "description": claim.description,
                "holds": claim.holds,
                "detail": claim.detail,
            }
            for claim in result.claims
        ],
        "text": result.text,
    }


def experiment_to_json(result: ExperimentResult, indent: int | None = 2) -> str:
    return json.dumps(experiment_to_dict(result), indent=indent)


def experiments_summary_csv(results: Sequence[ExperimentResult]) -> str:
    """One CSV row per experiment: id, title, claims passed/total."""
    if not results:
        raise ReproError("no experiment results to summarize")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["id", "title", "claims_passed", "claims_total", "status"])
    for result in results:
        passed = sum(1 for claim in result.claims if claim.holds)
        writer.writerow(
            [
                result.experiment_id,
                result.title,
                passed,
                len(result.claims),
                "ok" if result.all_claims_hold else "FAILED",
            ]
        )
    return buffer.getvalue()
