"""Exporting experiment results and trade-off curves to JSON/CSV.

A reproduction harness is only useful if its outputs can leave the Python
process: these helpers serialize :class:`ExperimentResult` objects (claims
included) and normalized curves into plain structures, JSON strings, or
CSV text that plotting scripts and CI dashboards can consume.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Sequence

from repro.core.edp import NormalizedPoint
from repro.errors import ReproError
from repro.experiments.base import ExperimentResult

__all__ = [
    "curve_to_rows",
    "curve_to_csv",
    "experiment_to_dict",
    "experiment_to_json",
    "experiments_summary_csv",
]


def curve_to_rows(points: Sequence[NormalizedPoint]) -> list[dict[str, Any]]:
    """Normalized curve as a list of plain dicts (one per design point)."""
    return [
        {
            "label": point.label,
            "performance": point.performance,
            "energy": point.energy,
            "edp_ratio": point.edp_ratio,
            "below_edp": point.below_edp_curve,
        }
        for point in points
    ]


def curve_to_csv(points: Sequence[NormalizedPoint]) -> str:
    """Normalized curve as CSV text with a header row."""
    if not points:
        raise ReproError("cannot export an empty curve")
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer,
        fieldnames=["label", "performance", "energy", "edp_ratio", "below_edp"],
    )
    writer.writeheader()
    for row in curve_to_rows(points):
        writer.writerow(row)
    return buffer.getvalue()


def experiment_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """JSON-safe summary of one experiment (data payloads are elided;
    claims, title, and the rendered text are preserved)."""
    return {
        "id": result.experiment_id,
        "title": result.title,
        "all_claims_hold": result.all_claims_hold,
        "claims": [
            {
                "description": claim.description,
                "holds": claim.holds,
                "detail": claim.detail,
            }
            for claim in result.claims
        ],
        "text": result.text,
    }


def experiment_to_json(result: ExperimentResult, indent: int | None = 2) -> str:
    return json.dumps(experiment_to_dict(result), indent=indent)


def experiments_summary_csv(results: Sequence[ExperimentResult]) -> str:
    """One CSV row per experiment: id, title, claims passed/total."""
    if not results:
        raise ReproError("no experiment results to summarize")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["id", "title", "claims_passed", "claims_total", "status"])
    for result in results:
        passed = sum(1 for claim in result.claims if claim.holds)
        writer.writerow(
            [
                result.experiment_id,
                result.title,
                passed,
                len(result.claims),
                "ok" if result.all_claims_hold else "FAILED",
            ]
        )
    return buffer.getvalue()
