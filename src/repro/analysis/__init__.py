"""Analysis and reporting: metrics, curve helpers, ASCII renderers."""

from repro.analysis.metrics import energy_summary, joules_per_qualifying_mb
from repro.analysis.report import (
    render_normalized_curve,
    render_series,
    render_table,
)

__all__ = [
    "energy_summary",
    "joules_per_qualifying_mb",
    "render_table",
    "render_series",
    "render_normalized_curve",
]
