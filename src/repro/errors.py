"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError`` etc. still propagate unchanged).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "SimulationError",
    "PlanError",
    "ExecutionError",
    "CalibrationError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A hardware/cluster/workload configuration is invalid or inconsistent."""


class ModelError(ReproError):
    """The analytical model was asked to evaluate an unsupported scenario."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class PlanError(ReproError):
    """A query plan could not be constructed (e.g. hash table cannot fit)."""


class ExecutionError(ReproError):
    """A functional P-store execution failed."""


class CalibrationError(ReproError):
    """Power-model regression could not be fitted to the measurements."""


class WorkloadError(ReproError):
    """A workload definition is invalid (unknown table, bad selectivity...)."""
