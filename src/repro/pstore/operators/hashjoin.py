"""In-memory hash join: build on one input, probe with the other.

The kernel is fully vectorized: the build side is sorted once by key, and
each probe batch binary-searches the sorted keys (`np.searchsorted`) to
expand all matches without a Python-level loop — the numpy equivalent of
the paper's cache-conscious join.

Matches every (build, probe) key pair, i.e. an inner equi-join with
duplicate support on both sides.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.operators.base import Operator

__all__ = ["HashJoinTable", "HashJoin", "hash_join_batches"]


class HashJoinTable:
    """The materialized build side of a hash join."""

    def __init__(self, build: RecordBatch, key: str):
        keys = build.column(key)
        if not np.issubdtype(keys.dtype, np.integer):
            raise ExecutionError(
                f"join key {key!r} must be an integer column, got {keys.dtype}"
            )
        self._key = key
        order = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[order]
        self._order = order
        self._build = build

    @property
    def num_rows(self) -> int:
        return self._build.num_rows

    def payload_bytes(self) -> int:
        return self._build.nbytes()

    def probe(self, probe: RecordBatch, probe_key: str) -> RecordBatch | None:
        """Join one probe batch; returns None when nothing matches."""
        probe_keys = probe.column(probe_key)
        left = np.searchsorted(self._sorted_keys, probe_keys, side="left")
        right = np.searchsorted(self._sorted_keys, probe_keys, side="right")
        counts = right - left
        total = int(counts.sum())
        if total == 0:
            return None

        probe_idx = np.repeat(np.arange(probe.num_rows), counts)
        # Positions into the sorted build side: for probe row i, the run
        # left[i]..right[i].  Vectorized run expansion:
        starts = np.repeat(left, counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        build_idx = self._order[starts + offsets]

        joined_columns: dict[str, np.ndarray] = {}
        for name in self._build.column_names:
            joined_columns[name] = self._build.column(name)[build_idx]
        for name in probe.column_names:
            if name == probe_key and probe_key == self._key:
                continue  # identical key values; keep the build copy only
            out_name = name if name not in joined_columns else f"probe_{name}"
            joined_columns[out_name] = probe.column(name)[probe_idx]
        return RecordBatch(joined_columns)


class HashJoin(Operator):
    """Streaming hash join operator: builds once, probes batch-by-batch."""

    def __init__(
        self,
        build: Operator,
        probe: Operator,
        build_key: str,
        probe_key: str,
        memory_limit_mb: float | None = None,
    ):
        self._build = build
        self._probe = probe
        self._build_key = build_key
        self._probe_key = probe_key
        self._memory_limit_mb = memory_limit_mb

    def batches(self) -> Iterator[RecordBatch]:
        build_batches = list(self._build)
        if not build_batches:
            return
        build_side = RecordBatch.concat(build_batches)
        if self._memory_limit_mb is not None:
            needed_mb = build_side.nbytes() / 1e6
            if needed_mb > self._memory_limit_mb:
                # P-store "does not support out-of-memory joins (2-pass
                # joins)" — the planner must route around this.
                raise ExecutionError(
                    f"hash table needs {needed_mb:.1f} MB but only "
                    f"{self._memory_limit_mb:.1f} MB is available "
                    "(P-store has no 2-pass join)"
                )
        table = HashJoinTable(build_side, self._build_key)
        for batch in self._probe:
            joined = table.probe(batch, self._probe_key)
            if joined is not None:
                yield joined


def hash_join_batches(
    build: RecordBatch, probe: RecordBatch, key: str, probe_key: str | None = None
) -> RecordBatch:
    """One-shot join of two batches (convenience for tests/microbenches)."""
    table = HashJoinTable(build, key)
    joined = table.probe(probe, probe_key or key)
    if joined is None:
        # Preserve schema for empty results.
        template = table.probe(probe.take(np.arange(0)), probe_key or key)
        if template is not None:  # pragma: no cover - probe of empty is None
            return template
        empty_cols: dict[str, np.ndarray] = {}
        for name in build.column_names:
            empty_cols[name] = np.empty(0, dtype=build.column(name).dtype)
        for name in probe.column_names:
            if name == (probe_key or key) and probe_key in (None, key):
                continue
            out = name if name not in empty_cols else f"probe_{name}"
            empty_cols[out] = np.empty(0, dtype=probe.column(name).dtype)
        return RecordBatch(empty_cols)
    return joined
