"""Select (filter) operator: applies a predicate to each batch."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.operators.base import Operator

__all__ = ["Filter", "column_less_than", "column_between"]

Predicate = Callable[[RecordBatch], np.ndarray]


class Filter(Operator):
    """Keep rows where ``predicate(batch)`` is True.

    The predicate receives the whole batch and returns a boolean mask —
    vectorized, like the paper's block-at-a-time select operator.
    Empty output batches are suppressed.
    """

    def __init__(self, child: Operator, predicate: Predicate):
        self._child = child
        self._predicate = predicate

    def batches(self) -> Iterator[RecordBatch]:
        for batch in self._child:
            mask = np.asarray(self._predicate(batch))
            if mask.dtype != np.bool_:
                raise ExecutionError(f"predicate returned dtype {mask.dtype}, want bool")
            if mask.shape != (batch.num_rows,):
                raise ExecutionError(
                    f"predicate mask shape {mask.shape} != ({batch.num_rows},)"
                )
            if mask.any():
                yield batch.filter(mask)


def column_less_than(name: str, cutoff: float) -> Predicate:
    """Predicate factory: ``column < cutoff`` (the selectivity predicates of
    Section 4.3 are of this shape on L_SHIPDATE / O_CUSTKEY)."""

    def predicate(batch: RecordBatch) -> np.ndarray:
        return batch.column(name) < cutoff

    return predicate


def column_between(name: str, low: float, high: float) -> Predicate:
    """Predicate factory: ``low <= column < high``."""

    def predicate(batch: RecordBatch) -> np.ndarray:
        values = batch.column(name)
        return (values >= low) & (values < high)

    return predicate
