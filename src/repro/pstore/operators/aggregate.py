"""Hash aggregation: group-by with sum/count/min/max/mean.

Used by the Q1-style pipelines (scan -> filter -> aggregate) of the
functional engine — TPC-H Q1 is the paper's canonical perfectly-scalable
workload (Figure 2a), and its partial-aggregate-per-node structure is what
makes it scale linearly.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.operators.base import Operator

__all__ = ["HashAggregate", "merge_partial_aggregates"]

_SUPPORTED = ("sum", "count", "min", "max", "mean")


class HashAggregate(Operator):
    """Group by one or more key columns; aggregate value columns.

    ``aggregates`` maps output column name to ``(function, input column)``.
    The operator materializes its input (hash aggregation is a pipeline
    breaker), then emits a single result batch sorted by group key.
    """

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Mapping[str, tuple[str, str]],
    ):
        if not group_by:
            raise ExecutionError("group_by must name at least one column")
        if not aggregates:
            raise ExecutionError("aggregates must define at least one output")
        for out_name, (func, _column) in aggregates.items():
            if func not in _SUPPORTED:
                raise ExecutionError(
                    f"aggregate {out_name!r}: unsupported function {func!r} "
                    f"(supported: {_SUPPORTED})"
                )
        self._child = child
        self._group_by = list(group_by)
        self._aggregates = dict(aggregates)

    def batches(self) -> Iterator[RecordBatch]:
        batches = list(self._child)
        if not batches:
            return
        data = RecordBatch.concat(batches)
        if data.num_rows == 0:
            return

        key_columns = [data.column(name) for name in self._group_by]
        # Build a composite group id via lexicographic unique.
        stacked = np.rec.fromarrays(key_columns, names=self._group_by)
        unique_keys, group_ids = np.unique(stacked, return_inverse=True)
        num_groups = len(unique_keys)

        out: dict[str, np.ndarray] = {
            name: np.asarray(unique_keys[name]) for name in self._group_by
        }
        counts = np.bincount(group_ids, minlength=num_groups)
        for out_name, (func, column_name) in self._aggregates.items():
            if func == "count":
                out[out_name] = counts.astype(np.int64)
                continue
            values = data.column(column_name).astype(np.float64)
            if func == "sum":
                out[out_name] = np.bincount(
                    group_ids, weights=values, minlength=num_groups
                )
            elif func == "mean":
                sums = np.bincount(group_ids, weights=values, minlength=num_groups)
                out[out_name] = sums / np.maximum(counts, 1)
            elif func in ("min", "max"):
                result = np.full(
                    num_groups, np.inf if func == "min" else -np.inf, dtype=np.float64
                )
                ufunc = np.minimum if func == "min" else np.maximum
                ufunc.at(result, group_ids, values)
                out[out_name] = result
        yield RecordBatch(out)


def merge_partial_aggregates(
    partials: Sequence[RecordBatch],
    group_by: Sequence[str],
    sum_columns: Sequence[str],
) -> RecordBatch:
    """Combine per-node partial aggregates (sums/counts) into a global one.

    This is the second phase of a parallel Q1: each node aggregates its
    partition locally, then the small partials are merged — the reason Q1
    needs almost no network and scales linearly (Figure 2a).
    """
    if not partials:
        raise ExecutionError("no partial aggregates to merge")
    combined = RecordBatch.concat(partials)
    aggregates = {name: ("sum", name) for name in sum_columns}
    merger = HashAggregate(
        _SingleBatch(combined), group_by=group_by, aggregates=aggregates
    )
    return merger.collect()


class _SingleBatch(Operator):
    def __init__(self, batch: RecordBatch):
        self._batch = batch

    def batches(self) -> Iterator[RecordBatch]:
        yield self._batch
