"""Exchange operators: hash partitioning and broadcast.

The paper calls exchange its "work-horse" operator: partition-incompatible
joins either **dual-shuffle** both inputs on the join key or **broadcast**
the filtered build table to every node (Section 4.3).  Functionally, both
reduce to routing each batch's rows to per-node output buffers; the
simulated executor prices the corresponding network volumes.

Hash routing uses a Fibonacci multiplicative hash of the key so that
routing is uncorrelated with key ranges (raw ``key % n`` would send
consecutive ORDERKEYs to consecutive nodes, masking skew behaviour).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data import RecordBatch
from repro.errors import ExecutionError

__all__ = ["hash_key_to_node", "hash_partition", "broadcast_batches", "ExchangeStats"]

_FIBONACCI_MULTIPLIER = np.uint64(11400714819323198485)  # 2^64 / golden ratio


def hash_key_to_node(keys: np.ndarray, num_nodes: int) -> np.ndarray:
    """Deterministic node assignment for integer join keys."""
    if num_nodes <= 0:
        raise ExecutionError(f"num_nodes must be > 0, got {num_nodes}")
    hashed = keys.astype(np.uint64) * _FIBONACCI_MULTIPLIER
    return ((hashed >> np.uint64(40)) % np.uint64(num_nodes)).astype(np.int64)


def hash_partition(batch: RecordBatch, key: str, num_nodes: int) -> list[RecordBatch]:
    """Split a batch into ``num_nodes`` batches by hash of ``key``.

    Row order within each partition is preserved (stable routing), matching
    the streaming behaviour of a real exchange operator.
    """
    assignment = hash_key_to_node(batch.column(key), num_nodes)
    return [batch.filter(assignment == node) for node in range(num_nodes)]


def broadcast_batches(batch: RecordBatch, num_nodes: int) -> list[RecordBatch]:
    """Every node receives the full batch (the broadcast join's build side)."""
    if num_nodes <= 0:
        raise ExecutionError(f"num_nodes must be > 0, got {num_nodes}")
    return [batch for _ in range(num_nodes)]


class ExchangeStats:
    """Network accounting for a functional exchange.

    Tracks rows and payload bytes that crossed node boundaries, which the
    integration tests compare against the volumes the simulator prices
    (``selectivity * volume * (n-1)/n`` for a shuffle, ``* (n-1)`` for a
    broadcast).
    """

    def __init__(self) -> None:
        self.rows_sent = 0
        self.bytes_sent = 0
        self.rows_local = 0

    def record_routing(
        self,
        source_node: int,
        partitions: Sequence[RecordBatch],
        row_bytes: int,
    ) -> None:
        """Account a routed batch: partition ``i`` goes to node ``i``."""
        for destination, part in enumerate(partitions):
            if destination == source_node:
                self.rows_local += part.num_rows
            else:
                self.rows_sent += part.num_rows
                self.bytes_sent += part.num_rows * row_bytes

    @property
    def total_rows(self) -> int:
        return self.rows_sent + self.rows_local

    @property
    def network_fraction(self) -> float:
        """Fraction of routed rows that crossed the network."""
        if self.total_rows == 0:
            return 0.0
        return self.rows_sent / self.total_rows
