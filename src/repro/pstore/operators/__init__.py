"""Block-iterator operators of functional P-store.

Every operator consumes and produces :class:`repro.data.RecordBatch`
streams via the Python iterator protocol — the same "block-iterator
tuple-scan" discipline the paper's engine uses, with no full
materialization between operators.
"""

from repro.pstore.operators.aggregate import HashAggregate
from repro.pstore.operators.base import Operator
from repro.pstore.operators.exchange import broadcast_batches, hash_partition
from repro.pstore.operators.filter import Filter
from repro.pstore.operators.hashjoin import HashJoin, hash_join_batches
from repro.pstore.operators.project import Project
from repro.pstore.operators.scan import MemoryScan

__all__ = [
    "Operator",
    "MemoryScan",
    "Filter",
    "Project",
    "HashJoin",
    "hash_join_batches",
    "hash_partition",
    "broadcast_batches",
    "HashAggregate",
]
