"""Scan operators: produce record batches from stored partitions."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.operators.base import Operator

__all__ = ["MemoryScan"]


class MemoryScan(Operator):
    """Scan over in-memory batches, re-blocked to a target batch size.

    This is the warm-buffer-pool scan of the paper's experiments (all P-store
    cluster runs used in-memory projections).  ``batch_rows`` controls the
    block size of the iterator; ``None`` passes partitions through unsplit.
    """

    def __init__(self, partitions: Sequence[RecordBatch], batch_rows: int | None = None):
        if batch_rows is not None and batch_rows <= 0:
            raise ExecutionError(f"batch_rows must be > 0, got {batch_rows}")
        self._partitions = list(partitions)
        self._batch_rows = batch_rows

    def batches(self) -> Iterator[RecordBatch]:
        for partition in self._partitions:
            if partition.num_rows == 0:
                continue
            if self._batch_rows is None:
                yield partition
            else:
                yield from partition.slices(self._batch_rows)
