"""Extend operator: append a computed column to each batch.

The functional Q1 pipeline needs derived expressions such as
``l_extendedprice * (1 - l_discount)``; :class:`Extend` evaluates a
vectorized expression per batch and attaches the result as a new column,
keeping the block-iterator discipline.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.operators.base import Operator

__all__ = ["Extend"]

Expression = Callable[[RecordBatch], np.ndarray]


class Extend(Operator):
    """Append ``name = expression(batch)`` to every batch."""

    def __init__(self, child: Operator, name: str, expression: Expression):
        self._child = child
        self._name = name
        self._expression = expression

    def batches(self) -> Iterator[RecordBatch]:
        for batch in self._child:
            if self._name in batch:
                raise ExecutionError(f"column {self._name!r} already exists")
            values = np.asarray(self._expression(batch))
            if values.shape != (batch.num_rows,):
                raise ExecutionError(
                    f"expression for {self._name!r} returned shape {values.shape}, "
                    f"expected ({batch.num_rows},)"
                )
            columns = {name: batch.column(name) for name in batch.column_names}
            columns[self._name] = values
            yield RecordBatch(columns)
