"""Top-K operator: keep the k largest rows by a sort column.

TPC-H Q3 returns the ten highest-revenue orders; in a parallel plan each
node keeps a local top-k and the coordinator merges them — correct because
the global top-k is contained in the union of the local ones.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.operators.base import Operator

__all__ = ["TopK", "merge_top_k"]


def _top_k_of_batch(batch: RecordBatch, by: str, k: int, ascending: bool) -> RecordBatch:
    values = batch.column(by)
    if len(values) <= k:
        order = np.argsort(values, kind="stable")
    else:
        # partial selection then sort of the survivors
        split = np.argpartition(values, k if ascending else len(values) - k)
        keep = split[:k] if ascending else split[len(values) - k :]
        order = keep[np.argsort(values[keep], kind="stable")]
    if not ascending:
        order = order[::-1]
    return batch.take(order[:k])


class TopK(Operator):
    """Materializing top-k: consumes the child, emits one sorted batch."""

    def __init__(self, child: Operator, by: str, k: int, ascending: bool = False):
        if k <= 0:
            raise ExecutionError(f"k must be > 0, got {k}")
        self._child = child
        self._by = by
        self._k = k
        self._ascending = ascending

    def batches(self) -> Iterator[RecordBatch]:
        best: RecordBatch | None = None
        for batch in self._child:
            candidate = (
                batch if best is None else RecordBatch.concat([best, batch])
            )
            best = _top_k_of_batch(candidate, self._by, self._k, self._ascending)
        if best is not None and best.num_rows > 0:
            yield best


def merge_top_k(
    partials: Sequence[RecordBatch], by: str, k: int, ascending: bool = False
) -> RecordBatch:
    """Coordinator-side merge of per-node top-k results."""
    partials = [p for p in partials if p.num_rows > 0]
    if not partials:
        raise ExecutionError("no partial top-k results to merge")
    return _top_k_of_batch(RecordBatch.concat(partials), by, k, ascending)
