"""Project operator: column pruning (and optional renaming)."""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.data import RecordBatch
from repro.pstore.operators.base import Operator

__all__ = ["Project"]


class Project(Operator):
    """Emit only the requested columns, optionally renamed.

    P-store stores pre-projected 20-byte tuples, so in the cluster plans the
    projection happens at load time; the operator exists for completeness of
    the functional engine and for Q1-style pipelines.
    """

    def __init__(
        self,
        child: Operator,
        columns: Sequence[str],
        rename: Mapping[str, str] | None = None,
    ):
        self._child = child
        self._columns = list(columns)
        self._rename = dict(rename or {})

    def batches(self) -> Iterator[RecordBatch]:
        for batch in self._child:
            projected = batch.project(self._columns)
            if self._rename:
                projected = projected.rename(self._rename)
            yield projected
