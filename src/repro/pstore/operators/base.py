"""Operator interface: a pull-based iterator of record batches."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.data import RecordBatch

__all__ = ["Operator"]


class Operator(ABC):
    """Base class for all block-iterator operators.

    Subclasses implement :meth:`batches`; consumers simply iterate:

    >>> for batch in Filter(MemoryScan([data]), predicate):  # doctest: +SKIP
    ...     process(batch)

    Operators are single-use iterables (like the paper's open/next/close
    trees): create a fresh tree per execution.
    """

    @abstractmethod
    def batches(self) -> Iterator[RecordBatch]:
        """Yield output batches in order."""

    def __iter__(self) -> Iterator[RecordBatch]:
        return self.batches()

    def collect(self) -> RecordBatch:
        """Materialize the full output (testing/debug convenience)."""
        out = list(self.batches())
        if not out:
            raise StopIteration("operator produced no batches")
        return RecordBatch.concat(out)

    def total_rows(self) -> int:
        """Consume the stream, returning the number of rows produced."""
        return sum(batch.num_rows for batch in self.batches())
