"""Replication-based dynamic cluster sizing.

Section 2 of the paper: Lang et al. [24] "showed how data replication can
be leveraged to reduce the number of online cluster nodes in a parallel
DBMS.  That work is complimentary to ours as we could leverage similar
replication techniques to dynamically augment cluster size."

This module supplies that substrate: a table is partitioned over ``n``
logical partitions and each partition is replicated on ``r`` consecutive
nodes (chained declustering).  Any subset of nodes that still *covers*
every partition can serve queries; deactivating the others shrinks the
online cluster without repartitioning — the knob the paper's
"smaller clusters save energy" findings want to turn at runtime.

The planner-facing output is a set of per-node **load weights**: how many
partitions each active node serves.  Those weights plug directly into the
simulated executor's ``partition_weights``, so the energy effect of
shrinking via replicas (including the induced imbalance when the active
count does not divide the partition count) is measured, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, SimulationError

__all__ = ["ReplicatedLayout"]


@dataclass(frozen=True)
class ReplicatedLayout:
    """Chained-declustering placement of ``num_partitions`` over ``num_nodes``.

    Partition ``p`` has its primary on node ``p % num_nodes`` and replicas
    on the next ``replication_factor - 1`` nodes (mod ``num_nodes``).
    """

    num_nodes: int
    num_partitions: int
    replication_factor: int = 2

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be > 0, got {self.num_nodes}")
        if self.num_partitions < self.num_nodes:
            raise ConfigurationError(
                "need at least one partition per node "
                f"({self.num_partitions} < {self.num_nodes})"
            )
        if not 1 <= self.replication_factor <= self.num_nodes:
            raise ConfigurationError(
                f"replication factor must be in [1, {self.num_nodes}], "
                f"got {self.replication_factor}"
            )

    # ------------------------------------------------------------- placement
    def replica_nodes(self, partition: int) -> tuple[int, ...]:
        """Nodes holding a copy of ``partition`` (primary first)."""
        if not 0 <= partition < self.num_partitions:
            raise ConfigurationError(
                f"partition {partition} out of range [0, {self.num_partitions})"
            )
        primary = partition % self.num_nodes
        return tuple(
            (primary + offset) % self.num_nodes
            for offset in range(self.replication_factor)
        )

    def partitions_on(self, node: int) -> tuple[int, ...]:
        """All partitions (primary or replica) stored on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(f"node {node} out of range")
        return tuple(
            partition
            for partition in range(self.num_partitions)
            if node in self.replica_nodes(partition)
        )

    @property
    def storage_blowup(self) -> float:
        """Stored copies per logical byte (== replication factor)."""
        return float(self.replication_factor)

    # -------------------------------------------------------------- coverage
    def covers(self, active_nodes: Sequence[int]) -> bool:
        """True if the active set holds at least one copy of every partition.

        Node ids outside ``[0, num_nodes)`` are rejected loudly: an
        out-of-range id silently covering nothing is exactly the kind of
        wrong answer a mid-trace failover must not build on.
        """
        return not self.uncovered_partitions(active_nodes)

    def uncovered_partitions(self, active_nodes: Sequence[int]) -> tuple[int, ...]:
        """Partitions with *no* copy on any node of ``active_nodes``.

        Empty means the set covers.  This is the diagnostic behind
        :meth:`covers` and :meth:`require_coverage`, exposed so failure
        handling can name what was lost instead of reporting a bare
        boolean.
        """
        active = set(active_nodes)
        for node in active:
            if not 0 <= node < self.num_nodes:
                raise ConfigurationError(
                    f"active node {node} out of range [0, {self.num_nodes})"
                )
        return tuple(
            partition
            for partition in range(self.num_partitions)
            if not any(node in active for node in self.replica_nodes(partition))
        )

    def require_coverage(
        self, active_nodes: Sequence[int], context: str = ""
    ) -> None:
        """Raise :class:`~repro.errors.SimulationError` unless the set covers.

        The mid-trace guard: when failures shrink the surviving node set
        below coverage, the trace cannot continue — every copy of some
        partition is on a dead node — and the error names the lost
        partitions so the scenario is debuggable.
        """
        lost = self.uncovered_partitions(active_nodes)
        if lost:
            where = f" {context}" if context else ""
            survivors = sorted(set(active_nodes))
            raise SimulationError(
                f"replica coverage lost{where}: partitions {list(lost)} have "
                f"no copy on the surviving active set {survivors} "
                f"(replication factor {self.replication_factor} over "
                f"{self.num_nodes} nodes)"
            )

    def minimum_active_nodes(self) -> int:
        """Smallest active-set size guaranteed to cover all partitions.

        With chained declustering over r consecutive nodes, leaving any
        run of r consecutive nodes entirely inactive loses a partition, so
        coverage needs at least ``ceil(n / r)`` active nodes — and the
        evenly-spaced choice achieves it.
        """
        return -(-self.num_nodes // self.replication_factor)

    def choose_active_nodes(self, count: int) -> tuple[int, ...]:
        """An evenly-spaced active set of ``count`` nodes that covers.

        Raises if ``count`` is below :meth:`minimum_active_nodes` or if the
        spacing fails to cover (cannot happen for even spacing, kept as a
        safety check).
        """
        if not 0 < count <= self.num_nodes:
            raise ConfigurationError(
                f"active count must be in [1, {self.num_nodes}], got {count}"
            )
        if count < self.minimum_active_nodes():
            raise ConfigurationError(
                f"{count} active nodes cannot cover {self.num_partitions} "
                f"partitions at replication factor {self.replication_factor}; "
                f"need at least {self.minimum_active_nodes()}"
            )
        # even spacing over the ring
        active = tuple(
            round(index * self.num_nodes / count) % self.num_nodes
            for index in range(count)
        )
        if len(set(active)) != count or not self.covers(active):
            raise ConfigurationError(
                f"failed to construct a covering active set of size {count}"
            )
        return active

    # ----------------------------------------------------------- query loads
    def assignment(self, active_nodes: Sequence[int]) -> dict[int, list[int]]:
        """Assign every partition to one active replica, balancing load.

        Greedy least-loaded assignment over each partition's active
        replicas — the strategy of the replication paper the authors cite.
        Returns {active node -> partitions served}.
        """
        active = list(dict.fromkeys(active_nodes))
        if not active:
            raise ConfigurationError("no active nodes")
        if not self.covers(active):
            raise ConfigurationError(
                f"active set {active} does not cover all partitions"
            )
        load: dict[int, list[int]] = {node: [] for node in active}
        active_set = set(active)
        for partition in range(self.num_partitions):
            candidates = [
                node for node in self.replica_nodes(partition) if node in active_set
            ]
            target = min(candidates, key=lambda node: len(load[node]))
            load[target].append(partition)
        return load

    def load_weights(self, active_nodes: Sequence[int]) -> list[float]:
        """Per-active-node data weights for the simulated executor.

        Weights are normalized so a perfectly even assignment yields 1.0
        per node (the convention of ``partition_weights``).
        """
        assignment = self.assignment(active_nodes)
        counts = [len(assignment[node]) for node in dict.fromkeys(active_nodes)]
        mean = self.num_partitions / len(counts)
        return [count / mean for count in counts]
