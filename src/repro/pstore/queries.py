"""Canonical functional query pipelines.

TPC-H Q1 is the paper's exemplar of a perfectly-scalable query (Figure 2a):
every node aggregates its own LINEITEM partition, and only tiny partial
aggregates cross the network.  :func:`parallel_q1` executes exactly that
two-phase plan on the functional engine; :func:`single_node_q1` is the
reference implementation the parallel plan must match.

TPC-H Q3 — the partition-incompatible join the whole paper revolves around
— is provided end-to-end as :func:`parallel_q3`: scan/filter both tables,
dual-shuffle join, revenue aggregation per order, top-10 by revenue.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.functional import FunctionalCluster
from repro.pstore.operators.aggregate import HashAggregate, merge_partial_aggregates
from repro.pstore.operators.extend import Extend
from repro.pstore.operators.filter import Filter
from repro.pstore.operators.scan import MemoryScan
from repro.pstore.operators.topk import TopK, merge_top_k

__all__ = [
    "q1_local_aggregate",
    "parallel_q1",
    "single_node_q1",
    "parallel_q3",
    "single_node_q3",
]

_GROUP = ("l_returnflag", "l_linestatus")
_SUMS = {
    "sum_qty": ("sum", "l_quantity"),
    "sum_base_price": ("sum", "l_extendedprice"),
    "sum_disc_price": ("sum", "disc_price"),
    "count_order": ("count", "l_quantity"),
}


def _pipeline(partition: RecordBatch, date_cutoff: int) -> HashAggregate:
    scan = MemoryScan([partition], batch_rows=4096)
    filtered = Filter(scan, lambda b: b.column("l_shipdate") <= date_cutoff)
    extended = Extend(
        filtered,
        "disc_price",
        lambda b: b.column("l_extendedprice") * (1.0 - b.column("l_discount")),
    )
    return HashAggregate(extended, group_by=list(_GROUP), aggregates=_SUMS)


def q1_local_aggregate(partition: RecordBatch, date_cutoff: int) -> RecordBatch | None:
    """Phase 1 of parallel Q1: one node's partial aggregate (None if empty)."""
    batches = list(_pipeline(partition, date_cutoff))
    if not batches:
        return None
    return RecordBatch.concat(batches)


def parallel_q1(
    partitions: Sequence[RecordBatch], date_cutoff: int
) -> RecordBatch:
    """Two-phase parallel Q1: local aggregates, then a global merge.

    The merged sums are finalized into the Q1 output (averages derived from
    sums and counts), sorted by group key as the query specifies.
    """
    if not partitions:
        raise ExecutionError("parallel_q1 needs at least one partition")
    partials = [
        partial
        for partial in (q1_local_aggregate(p, date_cutoff) for p in partitions)
        if partial is not None
    ]
    if not partials:
        raise ExecutionError("no rows qualified; Q1 result would be empty")
    merged = merge_partial_aggregates(
        partials,
        group_by=list(_GROUP),
        sum_columns=["sum_qty", "sum_base_price", "sum_disc_price", "count_order"],
    )
    return _finalize(merged)


def single_node_q1(lineitem: RecordBatch, date_cutoff: int) -> RecordBatch:
    """Reference implementation: the same pipeline on the whole table."""
    batches = list(_pipeline(lineitem, date_cutoff))
    if not batches:
        raise ExecutionError("no rows qualified; Q1 result would be empty")
    return _finalize(RecordBatch.concat(batches))


def _finalize(aggregated: RecordBatch) -> RecordBatch:
    counts = aggregated.column("count_order")
    if np.any(counts <= 0):
        raise ExecutionError("aggregate produced empty groups")
    columns = {name: aggregated.column(name) for name in aggregated.column_names}
    columns["avg_qty"] = aggregated.column("sum_qty") / counts
    columns["avg_price"] = aggregated.column("sum_base_price") / counts
    result = RecordBatch(columns)
    order = np.lexsort(
        (result.column("l_linestatus"), result.column("l_returnflag"))
    )
    return result.take(order)


# --------------------------------------------------------------------------
# TPC-H Q3: the partition-incompatible join + revenue top-k
# --------------------------------------------------------------------------

_Q3_GROUP = ("o_orderkey", "o_orderdate", "o_shippriority")


def _q3_revenue_top_k(joined: RecordBatch, k: int) -> RecordBatch:
    """Revenue aggregation + top-k over one node's join output."""
    scan = MemoryScan([joined], batch_rows=8192)
    extended = Extend(
        scan,
        "revenue_item",
        lambda b: b.column("l_extendedprice") * (1.0 - b.column("l_discount")),
    )
    aggregated = HashAggregate(
        extended,
        group_by=list(_Q3_GROUP),
        aggregates={"revenue": ("sum", "revenue_item")},
    )
    return TopK(aggregated, by="revenue", k=k).collect()


def parallel_q3(
    orders_partitions: Sequence[RecordBatch],
    lineitem_partitions: Sequence[RecordBatch],
    order_date_cutoff: int,
    ship_date_cutoff: int,
    k: int = 10,
    join_node_ids: Sequence[int] | None = None,
) -> RecordBatch:
    """Parallel TPC-H Q3: filter, dual-shuffle join, aggregate, top-k.

    Q3's predicates: orders placed before ``order_date_cutoff`` joined with
    line items shipped after ``ship_date_cutoff``; result is the top ``k``
    (orderkey, orderdate, shippriority) groups by revenue.
    ``join_node_ids`` restricts hash-table nodes (heterogeneous execution).
    """
    if len(orders_partitions) != len(lineitem_partitions):
        raise ExecutionError("orders/lineitem partition counts differ")
    cluster = FunctionalCluster(num_nodes=len(orders_partitions))
    join_result = cluster.shuffle_join(
        orders_partitions,
        lineitem_partitions,
        build_key="o_orderkey",
        probe_key="l_orderkey",
        build_predicate=lambda b: b.column("o_orderdate") < order_date_cutoff,
        probe_predicate=lambda b: b.column("l_shipdate") > ship_date_cutoff,
        join_node_ids=join_node_ids,
    )
    if join_result.total_rows == 0:
        raise ExecutionError("Q3 join produced no rows; widen the predicates")
    # Each join node computes a local revenue top-k; merge at coordinator.
    # (Here the per-node outputs were concatenated; re-split by node share
    # is unnecessary for correctness since top-k merge is associative.)
    local = _q3_revenue_top_k(join_result.result, k)
    return merge_top_k([local], by="revenue", k=k)


def single_node_q3(
    orders: RecordBatch,
    lineitem: RecordBatch,
    order_date_cutoff: int,
    ship_date_cutoff: int,
    k: int = 10,
) -> RecordBatch:
    """Reference Q3: same pipeline without parallelism."""
    from repro.pstore.operators.hashjoin import hash_join_batches

    build = orders.filter(orders.column("o_orderdate") < order_date_cutoff)
    probe = lineitem.filter(lineitem.column("l_shipdate") > ship_date_cutoff)
    joined = hash_join_batches(build, probe, key="o_orderkey", probe_key="l_orderkey")
    if joined.num_rows == 0:
        raise ExecutionError("Q3 join produced no rows; widen the predicates")
    return _q3_revenue_top_k(joined, k)
