"""The P-store planner: resolve a workload into an executable JoinPlan.

Implements the paper's execution-strategy rules:

* **Homogeneous vs heterogeneous** (Section 5.2 / Table 3's ``H``): all
  nodes build hash tables iff every node can hold its share,
  ``M >= Bld * Sbld / N``.  Otherwise Wimpy nodes become scan/filter
  feeders and only Beefy nodes join — and if even the Beefy nodes cannot
  hold ``Bld * Sbld / NB``, the plan is infeasible ("P-store does not
  support out-of-memory joins").
* **Broadcast feasibility** (Section 4.3.2): every node must hold the
  *entire* qualifying build table.
* **AUTO method choice**: pick the feasible method that moves the fewest
  bytes over the network (the classic optimizer rule the paper's
  "algorithmic bottleneck" discussion presumes).
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.hardware.cluster import BEEFY, ClusterSpec
from repro.pstore.plans import ExecutionMode, JoinPlan
from repro.workloads.queries import JoinMethod, JoinWorkloadSpec

__all__ = ["plan_join", "shuffle_network_mb", "broadcast_network_mb"]


def shuffle_network_mb(
    workload: JoinWorkloadSpec, num_nodes: int, num_join_nodes: int
) -> float:
    """Bytes crossing the network for a dual-shuffle join.

    Each of the ``num_nodes`` data partitions sends its qualifying tuples
    to the ``m`` join nodes, keeping the 1/m slice that hashes to itself
    when it is a join node.
    """
    if num_join_nodes <= 0:
        raise PlanError("shuffle needs at least one join node")
    m = num_join_nodes
    n = num_nodes
    qualifying = workload.qualifying_build_mb + workload.qualifying_probe_mb
    if m >= n:
        # homogeneous: each node keeps 1/n of its own qualifying data
        return qualifying * (n - 1) / n
    # heterogeneous: (n - m) feeder nodes send everything; m join nodes
    # keep 1/m of their own data.
    feeder_fraction = (n - m) / n
    join_fraction = (m / n) * (m - 1) / m
    return qualifying * (feeder_fraction + join_fraction)


def broadcast_network_mb(workload: JoinWorkloadSpec, num_nodes: int) -> float:
    """Bytes crossing the network for a broadcast join.

    Every node must receive the qualifying build tuples it does not already
    hold: ``(n-1)/n`` of the table, times ``n`` receivers — the algorithmic
    bottleneck of Section 4.1 (independent of n per receiver).
    """
    qualifying = workload.qualifying_build_mb
    return qualifying * (num_nodes - 1)


def _min_memory_mb(cluster: ClusterSpec) -> float:
    return min(spec.memory_mb for spec, _ in cluster.nodes())


def _beefy_ids(cluster: ClusterSpec) -> tuple[int, ...]:
    return tuple(
        node_id
        for node_id, (_spec, role) in enumerate(cluster.nodes())
        if role == BEEFY
    )


def plan_join(
    cluster: ClusterSpec,
    workload: JoinWorkloadSpec,
    warm_cache: bool = True,
    pipeline_cpu_cost: float = 1.0,
    receive_cpu_cost: float = 0.0,
    force_mode: ExecutionMode | None = None,
) -> JoinPlan:
    """Resolve ``workload`` into a :class:`JoinPlan` for ``cluster``.

    ``force_mode`` overrides the memory-driven homogeneous/heterogeneous
    choice.  The paper's Section 5.2 experiments force heterogeneous
    execution whenever the ORDERS selectivity is >= 10%, because on the real
    Wimpy nodes the cached working set left no headroom for hash tables —
    a constraint the pure hash-table-share arithmetic does not see.
    """
    n = cluster.num_nodes
    notes: list[str] = []

    if workload.method is JoinMethod.LOCAL:
        return JoinPlan(
            workload=workload,
            cluster=cluster,
            method=JoinMethod.LOCAL,
            mode=ExecutionMode.HOMOGENEOUS,
            join_node_ids=tuple(range(n)),
            warm_cache=warm_cache,
            pipeline_cpu_cost=pipeline_cpu_cost,
            receive_cpu_cost=receive_cpu_cost,
            notes=("partition-compatible join: no exchange needed",),
        )

    share = workload.hash_table_share_mb(n)
    fits_everywhere = _min_memory_mb(cluster) >= share  # Table 3's H predicate
    if force_mode is ExecutionMode.HOMOGENEOUS and not fits_everywhere:
        raise PlanError(
            f"{workload.name}: homogeneous execution forced but the per-node "
            f"hash-table share ({share:.0f} MB) exceeds the smallest node's "
            f"memory ({_min_memory_mb(cluster):.0f} MB)"
        )
    if force_mode is ExecutionMode.HETEROGENEOUS:
        fits_everywhere = False
        notes.append("heterogeneous execution forced by caller")

    if fits_everywhere:
        mode = ExecutionMode.HOMOGENEOUS
        join_nodes = tuple(range(n))
    else:
        beefy_ids = _beefy_ids(cluster)
        if not beefy_ids:
            raise PlanError(
                f"{workload.name}: hash-table share {share:.0f} MB exceeds node "
                f"memory {_min_memory_mb(cluster):.0f} MB and the cluster has no "
                "larger nodes to fall back to (P-store has no 2-pass join)"
            )
        beefy_share = workload.qualifying_build_mb / len(beefy_ids)
        beefy_memory = cluster.beefy_spec.memory_mb
        if beefy_share > beefy_memory:
            raise PlanError(
                f"{workload.name}: even heterogeneous execution needs "
                f"{beefy_share:.0f} MB per Beefy node but only "
                f"{beefy_memory:.0f} MB is available"
            )
        mode = ExecutionMode.HETEROGENEOUS
        join_nodes = beefy_ids
        if force_mode is None:
            notes.append(
                "wimpy nodes lack memory for their hash-table share; "
                "they scan/filter and feed the beefy nodes"
            )

    method = workload.method
    if method is JoinMethod.AUTO:
        candidates: list[tuple[float, JoinMethod]] = [
            (shuffle_network_mb(workload, n, len(join_nodes)), JoinMethod.SHUFFLE)
        ]
        if (
            mode is ExecutionMode.HOMOGENEOUS
            and workload.qualifying_build_mb <= _min_memory_mb(cluster)
        ):
            candidates.append(
                (broadcast_network_mb(workload, n), JoinMethod.BROADCAST)
            )
        network_mb, method = min(candidates, key=lambda pair: pair[0])
        notes.append(
            f"auto-chose {method.value} ({network_mb:.0f} MB over the network)"
        )

    if method is JoinMethod.BROADCAST:
        if mode is ExecutionMode.HETEROGENEOUS:
            raise PlanError(
                f"{workload.name}: broadcast join requires every node to hold "
                "the full hash table, impossible in heterogeneous mode"
            )
        if workload.qualifying_build_mb > _min_memory_mb(cluster):
            raise PlanError(
                f"{workload.name}: broadcast needs "
                f"{workload.qualifying_build_mb:.0f} MB on every node but the "
                f"smallest node has {_min_memory_mb(cluster):.0f} MB"
            )

    return JoinPlan(
        workload=workload,
        cluster=cluster,
        method=method,
        mode=mode,
        join_node_ids=join_nodes,
        warm_cache=warm_cache,
        pipeline_cpu_cost=pipeline_cpu_cost,
        receive_cpu_cost=receive_cpu_cost,
        notes=tuple(notes),
    )
