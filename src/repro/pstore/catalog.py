"""Catalog: how tables are laid out across the cluster.

Section 3.1 describes the layout the paper uses: large tables are
hash-partitioned on a chosen attribute ("hash segmentation"), small tables
are replicated on every node.  Whether a join needs an exchange is purely a
function of this metadata: a join is *partition compatible* when both
inputs are already hash-partitioned on the join attribute (or replicated).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads.tpch import TableSchema

__all__ = ["PartitionKind", "PartitionScheme", "CatalogTable", "Catalog"]


class PartitionKind(enum.Enum):
    HASH = "hash"
    REPLICATED = "replicated"


@dataclass(frozen=True)
class PartitionScheme:
    """Placement of one table across nodes."""

    kind: PartitionKind
    attribute: str | None = None

    def __post_init__(self) -> None:
        if self.kind is PartitionKind.HASH and not self.attribute:
            raise WorkloadError("hash partitioning needs an attribute")
        if self.kind is PartitionKind.REPLICATED and self.attribute:
            raise WorkloadError("replicated tables have no partitioning attribute")

    @classmethod
    def hash(cls, attribute: str) -> "PartitionScheme":
        return cls(kind=PartitionKind.HASH, attribute=attribute)

    @classmethod
    def replicated(cls) -> "PartitionScheme":
        return cls(kind=PartitionKind.REPLICATED)

    def compatible_with_key(self, join_key: str) -> bool:
        """True if a join on ``join_key`` needs no repartitioning of this side."""
        if self.kind is PartitionKind.REPLICATED:
            return True
        return self.attribute == join_key


@dataclass(frozen=True)
class CatalogTable:
    """A table registered in the catalog with its placement."""

    schema: TableSchema
    scheme: PartitionScheme
    projection: tuple[str, ...] | None = None

    @property
    def name(self) -> str:
        return self.schema.name


class Catalog:
    """Name -> CatalogTable registry with join-compatibility queries."""

    def __init__(self) -> None:
        self._tables: dict[str, CatalogTable] = {}

    def register(self, table: CatalogTable) -> None:
        if table.name in self._tables:
            raise WorkloadError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def table(self, name: str) -> CatalogTable:
        try:
            return self._tables[name]
        except KeyError:
            raise WorkloadError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def join_is_partition_compatible(
        self, left: str, right: str, join_key_left: str, join_key_right: str
    ) -> bool:
        """True when neither side needs repartitioning for this join.

        E.g. the paper's layout hashes ORDERS on O_CUSTKEY and LINEITEM on
        L_ORDERKEY: an ORDERS x LINEITEM join on the order key is *not*
        compatible (ORDERS must move), while CUSTOMER x ORDERS on the
        customer key is.
        """
        return self.table(left).scheme.compatible_with_key(join_key_left) and self.table(
            right
        ).scheme.compatible_with_key(join_key_right)

    @classmethod
    def paper_layout(cls) -> "Catalog":
        """The hash-segmentation layout of Section 3.1.

        LINEITEM on L_ORDERKEY, ORDERS on O_CUSTKEY, CUSTOMER on C_CUSTKEY;
        the remaining TPC-H tables replicated.
        """
        from repro.workloads import tpch

        catalog = cls()
        catalog.register(
            CatalogTable(tpch.LINEITEM, PartitionScheme.hash("l_orderkey"))
        )
        catalog.register(CatalogTable(tpch.ORDERS, PartitionScheme.hash("o_custkey")))
        catalog.register(
            CatalogTable(tpch.CUSTOMER, PartitionScheme.hash("c_custkey"))
        )
        for table in (tpch.SUPPLIER, tpch.PART, tpch.PARTSUPP, tpch.NATION, tpch.REGION):
            catalog.register(CatalogTable(table, PartitionScheme.replicated()))
        return catalog
