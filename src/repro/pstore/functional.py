"""Functional P-store: actually executes parallel joins on virtual nodes.

This is the correctness-level twin of :mod:`repro.pstore.simulated`: the
same plan shapes (dual shuffle / broadcast, homogeneous / heterogeneous)
run against real record batches on in-process "nodes".  Tests verify that

* results equal a single-node reference join, regardless of method/mode;
* the rows crossing node boundaries match the volumes the simulator prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.operators.exchange import ExchangeStats, hash_key_to_node
from repro.pstore.operators.hashjoin import HashJoinTable

__all__ = ["FunctionalCluster", "FunctionalJoinResult"]

Predicate = Callable[[RecordBatch], np.ndarray]


@dataclass
class FunctionalJoinResult:
    """Result batch plus exchange accounting for both phases."""

    result: RecordBatch
    build_stats: ExchangeStats
    probe_stats: ExchangeStats
    per_node_result_rows: list[int]

    @property
    def total_rows(self) -> int:
        return self.result.num_rows


def _apply_predicate(batch: RecordBatch, predicate: Predicate | None) -> RecordBatch:
    if predicate is None or batch.num_rows == 0:
        return batch
    mask = np.asarray(predicate(batch))
    return batch.filter(mask)


class FunctionalCluster:
    """A virtual shared-nothing cluster executing real parallel joins."""

    def __init__(self, num_nodes: int, row_bytes: int = 20):
        if num_nodes <= 0:
            raise ExecutionError(f"num_nodes must be > 0, got {num_nodes}")
        self.num_nodes = num_nodes
        self.row_bytes = row_bytes

    # ------------------------------------------------------------------ joins
    def shuffle_join(
        self,
        build_partitions: Sequence[RecordBatch],
        probe_partitions: Sequence[RecordBatch],
        build_key: str,
        probe_key: str,
        build_predicate: Predicate | None = None,
        probe_predicate: Predicate | None = None,
        join_node_ids: Sequence[int] | None = None,
    ) -> FunctionalJoinResult:
        """Dual-shuffle hash join (Section 4.3.1).

        ``join_node_ids`` restricts hash-table construction to a subset of
        nodes — heterogeneous execution, where the remaining nodes only
        scan/filter/forward.
        """
        self._check_partitions(build_partitions, "build")
        self._check_partitions(probe_partitions, "probe")
        join_nodes = self._resolve_join_nodes(join_node_ids)

        # Build phase: scan+filter each partition, route to join nodes.
        build_stats = ExchangeStats()
        build_inboxes: list[list[RecordBatch]] = [[] for _ in join_nodes]
        for node, partition in enumerate(build_partitions):
            qualifying = _apply_predicate(partition, build_predicate)
            routed = self._route(qualifying, build_key, join_nodes)
            build_stats.record_routing(node, self._as_dest_list(routed, node, join_nodes), self.row_bytes)
            for slot, batch in enumerate(routed):
                if batch.num_rows:
                    build_inboxes[slot].append(batch)

        tables = []
        for slot, inbox in enumerate(build_inboxes):
            if inbox:
                tables.append(HashJoinTable(RecordBatch.concat(inbox), build_key))
            else:
                tables.append(None)

        # Probe phase: scan+filter, route, probe on arrival.
        probe_stats = ExchangeStats()
        per_node_rows = [0] * len(join_nodes)
        results: list[RecordBatch] = []
        for node, partition in enumerate(probe_partitions):
            qualifying = _apply_predicate(partition, probe_predicate)
            routed = self._route(qualifying, probe_key, join_nodes)
            probe_stats.record_routing(node, self._as_dest_list(routed, node, join_nodes), self.row_bytes)
            for slot, batch in enumerate(routed):
                if batch.num_rows == 0 or tables[slot] is None:
                    continue
                joined = tables[slot].probe(batch, probe_key)
                if joined is not None:
                    per_node_rows[slot] += joined.num_rows
                    results.append(joined)

        return FunctionalJoinResult(
            result=self._concat_or_empty(results, build_partitions, probe_partitions, build_key, probe_key),
            build_stats=build_stats,
            probe_stats=probe_stats,
            per_node_result_rows=per_node_rows,
        )

    def broadcast_join(
        self,
        build_partitions: Sequence[RecordBatch],
        probe_partitions: Sequence[RecordBatch],
        build_key: str,
        probe_key: str,
        build_predicate: Predicate | None = None,
        probe_predicate: Predicate | None = None,
    ) -> FunctionalJoinResult:
        """Broadcast hash join (Section 4.3.2): full build table everywhere,
        probe stays local."""
        self._check_partitions(build_partitions, "build")
        self._check_partitions(probe_partitions, "probe")

        build_stats = ExchangeStats()
        qualifying_parts = []
        for node, partition in enumerate(build_partitions):
            qualifying = _apply_predicate(partition, build_predicate)
            qualifying_parts.append(qualifying)
            # node keeps its own copy; sends to the other n-1 nodes
            build_stats.rows_local += qualifying.num_rows
            build_stats.rows_sent += qualifying.num_rows * (self.num_nodes - 1)
            build_stats.bytes_sent += (
                qualifying.num_rows * (self.num_nodes - 1) * self.row_bytes
            )
        full_build = RecordBatch.concat(qualifying_parts)
        table = HashJoinTable(full_build, build_key) if full_build.num_rows else None

        probe_stats = ExchangeStats()  # stays empty: probe is local
        per_node_rows = [0] * self.num_nodes
        results: list[RecordBatch] = []
        for node, partition in enumerate(probe_partitions):
            qualifying = _apply_predicate(partition, probe_predicate)
            probe_stats.rows_local += qualifying.num_rows
            if table is None or qualifying.num_rows == 0:
                continue
            joined = table.probe(qualifying, probe_key)
            if joined is not None:
                per_node_rows[node] += joined.num_rows
                results.append(joined)

        return FunctionalJoinResult(
            result=self._concat_or_empty(results, build_partitions, probe_partitions, build_key, probe_key),
            build_stats=build_stats,
            probe_stats=probe_stats,
            per_node_result_rows=per_node_rows,
        )

    # ---------------------------------------------------------------- helpers
    def _check_partitions(self, partitions: Sequence[RecordBatch], label: str) -> None:
        if len(partitions) != self.num_nodes:
            raise ExecutionError(
                f"{label}: expected {self.num_nodes} partitions, got {len(partitions)}"
            )

    def _resolve_join_nodes(self, join_node_ids: Sequence[int] | None) -> list[int]:
        if join_node_ids is None:
            return list(range(self.num_nodes))
        nodes = list(join_node_ids)
        if not nodes:
            raise ExecutionError("need at least one join node")
        if any(not 0 <= n < self.num_nodes for n in nodes):
            raise ExecutionError(f"join node ids out of range: {nodes}")
        if len(set(nodes)) != len(nodes):
            raise ExecutionError(f"duplicate join node ids: {nodes}")
        return nodes

    def _route(
        self, batch: RecordBatch, key: str, join_nodes: list[int]
    ) -> list[RecordBatch]:
        """Hash-route a batch over the join nodes (slot-indexed)."""
        m = len(join_nodes)
        if batch.num_rows == 0:
            return [batch for _ in range(m)]
        assignment = hash_key_to_node(batch.column(key), m)
        return [batch.filter(assignment == slot) for slot in range(m)]

    def _as_dest_list(
        self, routed: list[RecordBatch], source_node: int, join_nodes: list[int]
    ) -> list[RecordBatch]:
        """Re-index slot-routed batches by physical node id for accounting."""
        empty = routed[0].take(np.arange(0)) if routed else None
        by_node: list[RecordBatch] = []
        for node in range(self.num_nodes):
            if node in join_nodes:
                by_node.append(routed[join_nodes.index(node)])
            else:
                by_node.append(empty if empty is not None else RecordBatch({"_": np.empty(0)}))
        return by_node

    def _concat_or_empty(
        self,
        results: list[RecordBatch],
        build_partitions: Sequence[RecordBatch],
        probe_partitions: Sequence[RecordBatch],
        build_key: str,
        probe_key: str,
    ) -> RecordBatch:
        if results:
            return RecordBatch.concat(results)
        # Empty result with the joined schema.
        from repro.pstore.operators.hashjoin import hash_join_batches

        build_template = RecordBatch.concat(list(build_partitions)).take(np.arange(0))
        probe_template = RecordBatch.concat(list(probe_partitions)).take(np.arange(0))
        build_one = RecordBatch(
            {
                name: np.zeros(1, dtype=build_template.column(name).dtype)
                for name in build_template.column_names
            }
        )
        probe_one = RecordBatch(
            {
                name: np.zeros(1, dtype=probe_template.column(name).dtype)
                for name in probe_template.column_names
            }
        )
        template = hash_join_batches(build_one, probe_one, key=build_key, probe_key=probe_key)
        return template.take(np.arange(0))
