"""Simulated P-store executor: JoinPlan -> fluid-simulator jobs.

Each (node, phase) pair becomes one :class:`~repro.simulator.jobs.FlowSpec`
whose demand coefficients encode the scan -> filter -> partition -> send
pipeline exactly:

* the flow's *rate* is the node's pre-filter scan rate (reference MB/s);
* CPU demand is ``pipeline_cpu_cost`` per scanned MB (plus optional
  ``receive_cpu_cost`` per ingested MB at hash-table nodes);
* disk demand is 1.0 per scanned MB when the cache is cold;
* network demands route the qualifying fraction to its destinations with
  per-destination NIC-in coefficients — so receiver-side ingestion limits
  (the heterogeneous bottleneck of Section 5.4) emerge from max-min
  fairness instead of being hard-coded.

Phases are barriers: the probe phase of a join starts only after every
node finished building ("after all the nodes have built their hash tables,
the LINEITEM table is repartitioned", Section 4.3.1).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Sequence

from repro.errors import PlanError, SimulationError
from repro.hardware.cluster import ClusterSpec
from repro.pstore.plans import JoinPlan
from repro.simulator.engine import ClusterSimulator, SimulationResult
from repro.simulator.jobs import FlowSpec, Job, Phase
from repro.simulator.network import IDEAL_SWITCH, SwitchModel
from repro.simulator.resources import cpu, disk, nic_in, nic_out
from repro.workloads.queries import JoinMethod

__all__ = ["build_join_job", "trace_jobs", "SimulatedPStore"]


def _partition_volumes(total_mb: float, weights: Sequence[float] | None, n: int) -> list[float]:
    """Per-node pre-filter volumes; ``weights`` models data skew."""
    if weights is None:
        return [total_mb / n] * n
    if len(weights) != n:
        raise PlanError(f"need {n} partition weights, got {len(weights)}")
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise PlanError(f"invalid partition weights: {weights}")
    scale = total_mb / sum(weights)
    return [w * scale for w in weights]


def _phase_flows(
    plan: JoinPlan,
    phase_label: str,
    table_volume_mb: float,
    selectivity: float,
    weights: Sequence[float] | None,
) -> list[FlowSpec]:
    """Flows for one exchange phase (build or probe) of the join."""
    n = plan.num_nodes
    join_nodes = list(plan.join_node_ids)
    m = len(join_nodes)
    volumes = _partition_volumes(table_volume_mb, weights, n)

    flows = []
    for node in range(n):
        demands: dict[str, float] = {cpu(node): plan.pipeline_cpu_cost}
        if not plan.warm_cache:
            demands[disk(node)] = 1.0

        if plan.method is JoinMethod.LOCAL:
            pass  # no exchange at all
        elif plan.method is JoinMethod.SHUFFLE:
            if node in join_nodes:
                outbound = selectivity * (m - 1) / m
            else:
                outbound = selectivity
            if outbound > 0:
                demands[nic_out(node)] = outbound
            for target in join_nodes:
                if target == node:
                    continue
                demands[nic_in(target)] = (
                    demands.get(nic_in(target), 0.0) + selectivity / m
                )
                if plan.receive_cpu_cost > 0:
                    demands[cpu(target)] = (
                        demands.get(cpu(target), 0.0)
                        + plan.receive_cpu_cost * selectivity / m
                    )
        elif plan.method is JoinMethod.BROADCAST:
            # Build side only: every node receives the full qualifying table.
            if n > 1:
                demands[nic_out(node)] = selectivity * (n - 1)
                for target in range(n):
                    if target == node:
                        continue
                    demands[nic_in(target)] = (
                        demands.get(nic_in(target), 0.0) + selectivity
                    )
                    if plan.receive_cpu_cost > 0:
                        demands[cpu(target)] = (
                            demands.get(cpu(target), 0.0)
                            + plan.receive_cpu_cost * selectivity
                        )
        else:  # pragma: no cover - planner resolves AUTO
            raise PlanError(f"unresolved join method: {plan.method}")

        flows.append(
            FlowSpec(
                name=f"{phase_label}:node{node}",
                volume_mb=volumes[node],
                demands=demands,
            )
        )
    return flows


def _local_probe_flows(
    plan: JoinPlan, weights: Sequence[float] | None
) -> list[FlowSpec]:
    """Broadcast probe: each node probes its local partition, no network."""
    n = plan.num_nodes
    volumes = _partition_volumes(plan.workload.probe_volume_mb, weights, n)
    flows = []
    for node in range(n):
        demands: dict[str, float] = {cpu(node): plan.pipeline_cpu_cost}
        if not plan.warm_cache:
            demands[disk(node)] = 1.0
        flows.append(
            FlowSpec(
                name=f"probe-local:node{node}",
                volume_mb=volumes[node],
                demands=demands,
            )
        )
    return flows


def build_join_job(
    plan: JoinPlan,
    job_name: str = "join",
    start_time_s: float = 0.0,
    partition_weights: Sequence[float] | None = None,
) -> Job:
    """Convert a plan into a two-phase (build, probe) simulator job.

    ``partition_weights`` optionally skews the per-node data volumes (the
    Section 4.1 "data skew" bottleneck; uniform by default, as in the
    paper's experiments).
    """
    workload = plan.workload
    build_flows = _phase_flows(
        plan,
        phase_label="build",
        table_volume_mb=workload.build_volume_mb,
        selectivity=workload.build_selectivity,
        weights=partition_weights,
    )
    if plan.method is JoinMethod.BROADCAST:
        probe_flows = _local_probe_flows(plan, partition_weights)
    else:
        probe_flows = _phase_flows(
            plan,
            phase_label="probe",
            table_volume_mb=workload.probe_volume_mb,
            selectivity=workload.probe_selectivity,
            weights=partition_weights,
        )
    return Job(
        name=job_name,
        phases=(
            Phase(name="build", flows=tuple(build_flows)),
            Phase(name="probe", flows=tuple(probe_flows)),
        ),
        start_time_s=start_time_s,
        metadata={"plan": plan},
    )


def trace_jobs(
    schedule: Sequence[tuple[JoinPlan, float]],
    partition_weights: Sequence[float] | None = None,
    job_label: str | None = None,
) -> list[Job]:
    """Simulator jobs for a timed trace, sharing flow templates.

    A trace repeats a handful of distinct plans across many arrivals, so
    each distinct plan (by identity) is expanded into flows once and every
    arrival gets a renamed, re-timed copy of that template job — the
    phases and :class:`~repro.simulator.jobs.FlowSpec` objects are
    *shared*.  The simulator only reads flow values, so results are
    identical to building every job from scratch, while long traces skip
    the per-arrival plan expansion and downstream consumers (the
    event-multiplexed engine's template interning, most prominently) can
    recognize repeated flows by identity.

    Naming matches :meth:`SimulatedPStore.run_trace`:
    ``{query}#{index}`` in schedule order, or ``{job_label}#{index}``.
    """
    if len(schedule) == 0:
        raise PlanError("need at least one arrival time")
    templates: dict[int, Job] = {}
    jobs = []
    for index, (plan, start) in enumerate(schedule):
        start = float(start)
        if start < 0:
            raise PlanError(f"negative arrival time {start} at event {index}")
        template = templates.get(id(plan))
        if template is None:
            template = templates[id(plan)] = build_join_job(
                plan, partition_weights=partition_weights
            )
        jobs.append(
            replace(
                template,
                name=f"{job_label or plan.workload.name}#{index}",
                start_time_s=start,
            )
        )
    return jobs


def _validate_schedule(schedule: Sequence[tuple[JoinPlan, float]]) -> None:
    """Reject malformed timed schedules before any job is built.

    A trace generator bug (a NaN from a bad rate function, a negative
    arrival from careless offset arithmetic) should fail loudly at
    submission, not as a stall or a silently-wrong queueing result deep
    in the simulator.
    """
    for index, entry in enumerate(schedule):
        _, start = entry
        try:
            start = float(start)
        except (TypeError, ValueError):
            raise SimulationError(
                f"arrival time at event {index} is not a number: {start!r}"
            ) from None
        if not math.isfinite(start):
            raise SimulationError(
                f"non-finite arrival time {start} at event {index}"
            )
        if start < 0:
            raise SimulationError(
                f"negative arrival time {start} at event {index}"
            )


class SimulatedPStore:
    """Runs join plans on the fluid simulator, one or many at a time."""

    def __init__(
        self,
        cluster: ClusterSpec,
        switch: SwitchModel = IDEAL_SWITCH,
        record_intervals: bool = True,
    ):
        self.cluster = cluster
        self.switch = switch
        self._simulator = ClusterSimulator(
            cluster, switch=switch, record_intervals=record_intervals
        )

    @property
    def simulator(self) -> ClusterSimulator:
        """The underlying engine (for batch runners that multiplex stores)."""
        return self._simulator

    def run(
        self,
        plan: JoinPlan,
        concurrency: int = 1,
        partition_weights: Sequence[float] | None = None,
    ) -> SimulationResult:
        """Execute ``concurrency`` independent copies of the join.

        This is the Figure 3/4 experiment setup: "1, 2, and 4 independent
        concurrent joins being performed" — all queries start together and
        share the cluster.
        """
        if concurrency <= 0:
            raise PlanError(f"concurrency must be > 0, got {concurrency}")
        jobs = [
            build_join_job(
                plan,
                job_name=f"join#{index}",
                partition_weights=partition_weights,
            )
            for index in range(concurrency)
        ]
        return self._simulator.run(jobs)

    def run_stream(
        self,
        plan: JoinPlan,
        start_times_s: Sequence[float],
        partition_weights: Sequence[float] | None = None,
        policy=None,
        control_interval_s: float = 1.0,
    ) -> SimulationResult:
        """Execute one copy of the join per arrival time.

        Queries arriving while earlier ones still run share the cluster;
        the result's per-job response times expose queueing/contention
        delay (``result.response_time_s("join#3")``).  ``start_times_s``
        is any float sequence — numpy arrays straight out of the
        :mod:`repro.workloads.arrivals` generators included.
        """
        return self.run_trace(
            [(plan, start) for start in start_times_s],
            partition_weights=partition_weights,
            job_label="join",
            policy=policy,
            control_interval_s=control_interval_s,
        )

    def run_trace(
        self,
        schedule: Sequence[tuple[JoinPlan, float]],
        partition_weights: Sequence[float] | None = None,
        job_label: str | None = None,
        policy=None,
        control_interval_s: float = 1.0,
        faults=None,
        failure_policy=None,
        layout=None,
    ) -> SimulationResult:
        """Execute a timed trace of (possibly different) joins.

        ``schedule`` pairs each join plan with its arrival time, so one
        simulation replays a whole heterogeneous query trace — a daily
        report interleaved with rollups — under queueing.  Jobs are named
        ``{query}#{index}`` in schedule order (``{job_label}#{index}``
        when ``job_label`` is given), and the result's per-job response
        times include each query's contention delay.

        This serial replay is the *oracle* for the event-multiplexed
        batch path (:func:`~repro.simulator.multiplex.run_multiplexed`):
        multiplexing the same trace across many designs must reproduce
        this method's result bit for bit, and
        ``tests/simulator/test_multiplex.py`` holds it to that.

        ``policy`` hands node power states and per-node DVFS to a
        :class:`~repro.policy.policies.ControlPolicy`, consulted every
        ``control_interval_s`` simulated seconds (``None`` and static
        policies replay exactly as before).

        ``faults`` injects a
        :class:`~repro.faults.schedule.FaultSchedule` of crashes,
        stragglers, and network degradations into the replay, with
        ``failure_policy`` governing killed queries and ``layout`` (a
        :class:`~repro.pstore.replication.ReplicatedLayout`) deciding
        whether a crash is survivable.  An empty or absent schedule
        replays bit-identically to the healthy path.
        """
        _validate_schedule(schedule)
        return self._simulator.run(
            trace_jobs(
                schedule, partition_weights=partition_weights, job_label=job_label
            ),
            policy=policy,
            control_interval_s=control_interval_s,
            faults=faults,
            failure_policy=failure_policy,
            layout=layout,
        )
