"""The P-store facade: plan, simulate, and explain parallel hash joins.

Typical use (the Figure 3 experiment, condensed)::

    from repro.hardware import ClusterSpec
    from repro.hardware.presets import CLUSTER_V_NODE
    from repro.pstore import PStore, PStoreConfig
    from repro.simulator.network import SMC_GS5_SWITCH
    from repro.workloads.queries import q3_join

    engine = PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, 8),
        switch=SMC_GS5_SWITCH,
    )
    result = engine.simulate(q3_join(scale_factor=1000), concurrency=4)
    print(result.makespan_s, result.energy_j)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hardware.cluster import ClusterSpec
from repro.pstore.planner import plan_join
from repro.pstore.plans import ExecutionMode, JoinPlan
from repro.pstore.simulated import SimulatedPStore
from repro.simulator.engine import SimulationResult
from repro.simulator.network import IDEAL_SWITCH, SwitchModel
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["PStoreConfig", "PStore"]


@dataclass(frozen=True)
class PStoreConfig:
    """Engine-level execution parameters.

    * ``warm_cache`` — the paper's cluster experiments all ran with warm
      buffer pools (scans are CPU-, not disk-, bound).
    * ``pipeline_cpu_cost`` — CPU bandwidth consumed per scanned MB; 1.0
      reproduces the paper's model, larger values model slower engine
      pipelines (see the Figure 7 calibration notes).
    * ``receive_cpu_cost`` — CPU charged per ingested MB on hash-table
      nodes (0.0 in the paper's model; used by ablation benches).
    """

    warm_cache: bool = True
    pipeline_cpu_cost: float = 1.0
    receive_cpu_cost: float = 0.0


class PStore:
    """Plans and executes (simulated) parallel hash joins on one cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        switch: SwitchModel = IDEAL_SWITCH,
        config: PStoreConfig | None = None,
        record_intervals: bool = True,
    ):
        self.cluster = cluster
        self.switch = switch
        self.config = config or PStoreConfig()
        self._executor = SimulatedPStore(
            cluster, switch=switch, record_intervals=record_intervals
        )

    def plan(
        self,
        workload: JoinWorkloadSpec,
        force_mode: "ExecutionMode | None" = None,
    ) -> JoinPlan:
        """Resolve the execution strategy for a workload on this cluster."""
        return plan_join(
            self.cluster,
            workload,
            warm_cache=self.config.warm_cache,
            pipeline_cpu_cost=self.config.pipeline_cpu_cost,
            receive_cpu_cost=self.config.receive_cpu_cost,
            force_mode=force_mode,
        )

    def simulate(
        self,
        workload: JoinWorkloadSpec | JoinPlan,
        concurrency: int = 1,
        partition_weights: Sequence[float] | None = None,
        force_mode: "ExecutionMode | None" = None,
    ) -> SimulationResult:
        """Simulate the workload, returning response time and energy."""
        plan = (
            workload
            if isinstance(workload, JoinPlan)
            else self.plan(workload, force_mode=force_mode)
        )
        return self._executor.run(
            plan, concurrency=concurrency, partition_weights=partition_weights
        )

    def simulate_stream(
        self,
        workload: JoinWorkloadSpec | JoinPlan,
        start_times_s: Sequence[float],
        partition_weights: Sequence[float] | None = None,
        force_mode: "ExecutionMode | None" = None,
    ) -> SimulationResult:
        """Simulate a stream of identical queries arriving over time."""
        plan = (
            workload
            if isinstance(workload, JoinPlan)
            else self.plan(workload, force_mode=force_mode)
        )
        return self._executor.run_stream(
            plan, start_times_s, partition_weights=partition_weights
        )

    def explain(self, workload: JoinWorkloadSpec | JoinPlan) -> str:
        """Human-readable plan description."""
        plan = workload if isinstance(workload, JoinPlan) else self.plan(workload)
        return plan.explain()
