"""Physical join plans: the object shared by both P-store executors.

A :class:`JoinPlan` fixes everything the paper's Section 4/5 experiments
vary: the join method (dual shuffle / broadcast / local), the execution
mode (homogeneous vs heterogeneous — Section 5.2's "two important notes"),
which nodes build hash tables, and the cache regime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.hardware.cluster import ClusterSpec
from repro.workloads.queries import JoinMethod, JoinWorkloadSpec

__all__ = ["ExecutionMode", "JoinPlan"]


class ExecutionMode(enum.Enum):
    """Who participates in the join itself (Section 5.2).

    * HOMOGENEOUS — every node scans, exchanges, builds and probes.
    * HETEROGENEOUS — Wimpy nodes "only scan and filter the data before
      shuffling it to the Beefy nodes for further processing".
    """

    HOMOGENEOUS = "homogeneous"
    HETEROGENEOUS = "heterogeneous"


@dataclass(frozen=True)
class JoinPlan:
    """A fully-resolved parallel hash join execution plan."""

    workload: JoinWorkloadSpec
    cluster: ClusterSpec
    method: JoinMethod
    mode: ExecutionMode
    join_node_ids: tuple[int, ...]
    warm_cache: bool = True
    #: CPU-bandwidth cost per pre-filter MB of the scan/filter/partition/send
    #: pipeline.  1.0 matches the paper's model (U equals the scan rate);
    #: larger values model engines whose effective scan rate is below the
    #: raw CPU bandwidth (see the Figure 7 calibration).
    pipeline_cpu_cost: float = 1.0
    #: CPU cost per received MB at hash-table nodes (build insert / probe
    #: lookup).  The paper's model charges 0 (only scan-side CPU counts);
    #: nonzero values are used by the ablation benches.
    receive_cpu_cost: float = 0.0
    notes: tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if self.method is JoinMethod.AUTO:
            raise PlanError("JoinPlan.method must be resolved, not AUTO")
        num_nodes = self.cluster.num_nodes
        if self.method is not JoinMethod.LOCAL:
            if not self.join_node_ids:
                raise PlanError("a non-local join needs at least one join node")
            if any(not 0 <= i < num_nodes for i in self.join_node_ids):
                raise PlanError(
                    f"join node ids {self.join_node_ids} out of range for "
                    f"{num_nodes}-node cluster"
                )
            if len(set(self.join_node_ids)) != len(self.join_node_ids):
                raise PlanError(f"duplicate join node ids: {self.join_node_ids}")
        if self.pipeline_cpu_cost <= 0:
            raise PlanError(f"pipeline_cpu_cost must be > 0, got {self.pipeline_cpu_cost}")
        if self.receive_cpu_cost < 0:
            raise PlanError(f"receive_cpu_cost must be >= 0, got {self.receive_cpu_cost}")

    @property
    def num_nodes(self) -> int:
        return self.cluster.num_nodes

    @property
    def num_join_nodes(self) -> int:
        if self.method is JoinMethod.LOCAL:
            return self.num_nodes
        return len(self.join_node_ids)

    def hash_table_share_mb(self) -> float:
        """Per-join-node hash table size implied by this plan."""
        if self.method is JoinMethod.BROADCAST:
            # every join node holds the full qualifying build table
            return self.workload.qualifying_build_mb
        return self.workload.hash_table_share_mb(self.num_join_nodes)

    def explain(self) -> str:
        """Multi-line, human-readable plan description."""
        lines = [
            f"JoinPlan for {self.workload.name} on {self.cluster.name}",
            f"  method: {self.method.value}   mode: {self.mode.value}",
            f"  nodes: {self.num_nodes} total, "
            f"{self.num_join_nodes} building hash tables",
            f"  hash table/node: {self.hash_table_share_mb():.1f} MB",
            f"  cache: {'warm' if self.warm_cache else 'cold (disk scan)'}",
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)
