"""P-store: the paper's custom parallel query execution kernel (Section 4).

P-store is "built on top of a block-iterator tuple-scan module and a storage
engine that has scan, project, and select operators", extended with network
exchange and hash-join operators.  This package provides it at two levels:

* **functional** — operators really process tuples (numpy record batches):
  :mod:`repro.pstore.operators`, :mod:`repro.pstore.functional`.  Used for
  correctness tests, small-scale examples, and to cross-check the data
  volumes the simulator prices.
* **simulated** — the same physical plans are converted into fluid-flow
  jobs for :mod:`repro.simulator`, producing the response times and energy
  figures of the paper's cluster experiments:
  :mod:`repro.pstore.plans`, :mod:`repro.pstore.planner`,
  :mod:`repro.pstore.simulated`.

The :class:`repro.pstore.engine.PStore` facade ties both together.
"""

from repro.pstore.catalog import Catalog, CatalogTable, PartitionScheme
from repro.pstore.engine import PStore, PStoreConfig
from repro.pstore.functional import FunctionalCluster, FunctionalJoinResult
from repro.pstore.planner import plan_join
from repro.pstore.plans import ExecutionMode, JoinPlan

__all__ = [
    "PStore",
    "PStoreConfig",
    "Catalog",
    "CatalogTable",
    "PartitionScheme",
    "FunctionalCluster",
    "FunctionalJoinResult",
    "plan_join",
    "JoinPlan",
    "ExecutionMode",
]
