"""Functional storage: materialized per-node partitions of record batches.

:class:`PartitionedStore` places a table's rows onto virtual nodes according
to a :class:`~repro.pstore.catalog.PartitionScheme` — hash partitioning uses
the same Fibonacci hash as the exchange operator, so data placement and
exchange routing agree (a partition-compatible join really does find all
matching rows locally, which the integration tests verify).
"""

from __future__ import annotations

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.catalog import PartitionKind, PartitionScheme
from repro.pstore.operators.exchange import hash_key_to_node

__all__ = ["PartitionedStore"]


class PartitionedStore:
    """A table distributed over ``num_nodes`` virtual nodes."""

    def __init__(
        self,
        name: str,
        batch: RecordBatch,
        scheme: PartitionScheme,
        num_nodes: int,
    ):
        if num_nodes <= 0:
            raise ExecutionError(f"num_nodes must be > 0, got {num_nodes}")
        self.name = name
        self.scheme = scheme
        self.num_nodes = num_nodes
        if scheme.kind is PartitionKind.REPLICATED:
            self._partitions = [batch for _ in range(num_nodes)]
        else:
            assignment = hash_key_to_node(batch.column(scheme.attribute), num_nodes)
            self._partitions = [
                batch.filter(assignment == node) for node in range(num_nodes)
            ]

    def partition(self, node_id: int) -> RecordBatch:
        if not 0 <= node_id < self.num_nodes:
            raise ExecutionError(
                f"node {node_id} out of range for {self.num_nodes}-node store"
            )
        return self._partitions[node_id]

    def partitions(self) -> list[RecordBatch]:
        return list(self._partitions)

    @property
    def total_rows(self) -> int:
        if self.scheme.kind is PartitionKind.REPLICATED:
            return self._partitions[0].num_rows
        return sum(partition.num_rows for partition in self._partitions)

    def imbalance(self) -> float:
        """Max partition size over mean partition size (1.0 = perfectly even).

        Data skew "can cause an imbalance in the utilization of cluster
        nodes" (Section 4.1); this is the standard skew metric for it.
        """
        if self.scheme.kind is PartitionKind.REPLICATED:
            return 1.0
        sizes = [partition.num_rows for partition in self._partitions]
        mean = sum(sizes) / len(sizes)
        if mean == 0:
            return 1.0
        return max(sizes) / mean
