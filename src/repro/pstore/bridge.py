"""Bridge: execute a planner-produced :class:`JoinPlan` on real tuples.

The simulated executor prices plans; this bridge *runs* them on the
functional engine, so one plan object can be both costed and verified:

>>> plan = plan_join(cluster_spec, workload)          # doctest: +SKIP
>>> priced = SimulatedPStore(cluster_spec).run(plan)  # time & joules
>>> answer = execute_plan(plan, orders, lineitem)     # actual rows

The bridge derives everything from the plan — node count, join-node subset
(heterogeneous execution), method (shuffle/broadcast/local) — and places
the input tables with the paper's partition-incompatible layout unless a
partitioning column is supplied.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data import RecordBatch
from repro.errors import PlanError
from repro.pstore.catalog import PartitionScheme
from repro.pstore.functional import FunctionalCluster, FunctionalJoinResult
from repro.pstore.plans import JoinPlan
from repro.pstore.storage import PartitionedStore
from repro.workloads.queries import JoinMethod

__all__ = ["execute_plan"]

Predicate = Callable[[RecordBatch], np.ndarray]


def execute_plan(
    plan: JoinPlan,
    build_table: RecordBatch,
    probe_table: RecordBatch,
    build_key: str = "o_orderkey",
    probe_key: str = "l_orderkey",
    build_predicate: Predicate | None = None,
    probe_predicate: Predicate | None = None,
    build_placement: str | None = "o_custkey",
    probe_placement: str | None = "l_shipdate",
) -> FunctionalJoinResult:
    """Run ``plan`` functionally over the given tables.

    ``build_placement``/``probe_placement`` name the columns the stored
    tables are hash-partitioned on (the paper's Q3 layout by default);
    ``None`` partitions on the join key itself — the partition-compatible
    case a LOCAL plan requires.
    """
    n = plan.num_nodes
    build_scheme = PartitionScheme.hash(build_placement or build_key)
    probe_scheme = PartitionScheme.hash(probe_placement or probe_key)
    build_parts = PartitionedStore("build", build_table, build_scheme, n).partitions()
    probe_parts = PartitionedStore("probe", probe_table, probe_scheme, n).partitions()

    cluster = FunctionalCluster(num_nodes=n, row_bytes=plan.workload.tuple_bytes)

    if plan.method is JoinMethod.SHUFFLE:
        join_nodes = (
            list(plan.join_node_ids) if plan.num_join_nodes < n else None
        )
        return cluster.shuffle_join(
            build_parts,
            probe_parts,
            build_key=build_key,
            probe_key=probe_key,
            build_predicate=build_predicate,
            probe_predicate=probe_predicate,
            join_node_ids=join_nodes,
        )
    if plan.method is JoinMethod.BROADCAST:
        return cluster.broadcast_join(
            build_parts,
            probe_parts,
            build_key=build_key,
            probe_key=probe_key,
            build_predicate=build_predicate,
            probe_predicate=probe_predicate,
        )
    if plan.method is JoinMethod.LOCAL:
        if build_placement is not None and build_placement != build_key:
            raise PlanError(
                "a LOCAL plan requires the build table to be partitioned on "
                f"the join key ({build_key!r}), not {build_placement!r}"
            )
        if probe_placement is not None and probe_placement != probe_key:
            raise PlanError(
                "a LOCAL plan requires the probe table to be partitioned on "
                f"the join key ({probe_key!r}), not {probe_placement!r}"
            )
        # Partition-compatible: the shuffle degenerates to local routing
        # (every row already sits on its hash-target node).
        return cluster.shuffle_join(
            PartitionedStore(
                "build", build_table, PartitionScheme.hash(build_key), n
            ).partitions(),
            PartitionedStore(
                "probe", probe_table, PartitionScheme.hash(probe_key), n
            ).partitions(),
            build_key=build_key,
            probe_key=probe_key,
            build_predicate=build_predicate,
            probe_predicate=probe_predicate,
        )
    raise PlanError(f"cannot execute plan with method {plan.method}")  # AUTO
