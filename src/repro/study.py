"""The ``Study`` facade: one fluent entry point for design-space studies.

Pre-redesign, evaluating a workload over a design space meant choosing
between three parallel APIs: :class:`~repro.core.design_space
.DesignSpaceExplorer` sweeps (single joins, one axis),
:func:`~repro.workloads.suite.suite_tradeoff_curve` (suites, no
memoization, no parallelism, no Pareto selection), and the raw
:class:`~repro.search.engine.DesignSpaceSearch` engine (grids, no
normalized-curve analyses).  A :class:`Study` unifies them::

    from repro import CLUSTER_V_NODE, WIMPY_LAPTOP_B, Study, DesignSpaceExplorer
    from repro.workloads.suite import WorkloadSuite

    explorer = DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)
    result = (
        Study(explorer)
        .with_workload(WorkloadSuite.of("nightly", q1, q2))
        .with_workers(4)
        .run()
    )
    result.pareto_frontier()          # SearchResult selections ...
    result.best_under_sla(30.0)
    result.curve().best_design(0.6)   # ... and TradeoffCurve analyses
    result.to_json()                  # analysis/export hooks

The space can be a :class:`~repro.search.grid.DesignGrid`, an explicit
candidate sequence, or a :class:`DesignSpaceExplorer` — in the explorer
case the study adopts its evaluator configuration *and its evaluation
cache*, so studies, sweeps, and single-point evaluations all warm one
memo and legacy sweeps stay bit-identical.  The workload is anything
satisfying the :class:`~repro.workloads.protocol.Workload` protocol:
single joins, weighted suites, arrival-trace mixes.

Studies are immutable: every ``with_*`` step returns a new study, so
partially-configured studies can be shared and forked freely.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable

from repro.core.design_space import DesignPoint, DesignSpaceExplorer, TradeoffCurve
from repro.errors import ConfigurationError, ModelError
from repro.pstore.plans import ExecutionMode
from repro.search.cache import EvaluationCache
from repro.search.engine import DesignSpaceSearch, SearchResult
from repro.search.evaluators import (
    CallableEvaluator,
    EvaluatedDesign,
    ModelEvaluator,
    SearchEvaluator,
)
from repro.search.grid import DesignCandidate, DesignGrid
from repro.workloads.protocol import Workload, as_workload
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["Study", "StudyResult"]


class Study:
    """A fluent, immutable description of one design-space study."""

    def __init__(
        self,
        space: DesignGrid | DesignSpaceExplorer | Iterable[DesignCandidate],
        *,
        workload: Workload | None = None,
        evaluator: SearchEvaluator | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
        cache: EvaluationCache | None = None,
        mode: ExecutionMode | None = None,
        reference_label: str | None = None,
        _engine_cell: list | None = None,
    ):
        if isinstance(space, (DesignGrid, DesignSpaceExplorer)):
            self._space: DesignGrid | DesignSpaceExplorer | tuple[DesignCandidate, ...] = space
        else:
            self._space = tuple(space)
            if not self._space:
                raise ConfigurationError("the design space is empty")
        self._workload = workload
        self._evaluator = evaluator
        self._workers = workers
        self._chunk_size = chunk_size
        self._cache = cache
        self._mode = mode
        self._reference_label = reference_label
        # One-slot holder for the lazily built engine, shared between
        # studies whose engine configuration is identical (see _with), so
        # workload-swapped studies reuse one pool and one entry memo.
        self._engine_cell: list = _engine_cell if _engine_cell is not None else [None]

    # ------------------------------------------------------------- fluent API
    #: settings a DesignSpaceSearch is built from; changing any of them
    #: means a derived study can no longer share this study's engine
    _ENGINE_SETTINGS = ("evaluator", "workers", "chunk_size", "cache")

    def _with(self, **overrides) -> "Study":
        settings = {
            "workload": self._workload,
            "evaluator": self._evaluator,
            "workers": self._workers,
            "chunk_size": self._chunk_size,
            "cache": self._cache,
            "mode": self._mode,
            "reference_label": self._reference_label,
        }
        if not any(key in overrides for key in self._ENGINE_SETTINGS):
            settings["_engine_cell"] = self._engine_cell
        settings.update(overrides)
        return Study(self._space, **settings)

    def with_workload(self, workload: Workload | JoinWorkloadSpec) -> "Study":
        """Set the workload: a join spec, suite, trace mix, or any Workload."""
        return self._with(workload=as_workload(workload))

    def with_evaluator(
        self,
        evaluator: SearchEvaluator | Callable[..., tuple[float, float]],
    ) -> "Study":
        """Set the evaluator; bare ``(cluster, query)`` callables are adapted."""
        if not isinstance(evaluator, SearchEvaluator):
            if not callable(evaluator):
                raise ConfigurationError(
                    f"not an evaluator: {evaluator!r} (expected a SearchEvaluator "
                    "or a (cluster, query) -> (time_s, energy_j) callable)"
                )
            evaluator = CallableEvaluator(evaluator)
        return self._with(evaluator=evaluator)

    def with_workers(self, workers: int, chunk_size: int | None = None) -> "Study":
        """Fan cache misses out over ``workers`` processes."""
        return self._with(workers=workers, chunk_size=chunk_size)

    def with_cache(self, cache: "EvaluationCache | str") -> "Study":
        """Use an explicit cache, or a path for a disk-backed one."""
        if not isinstance(cache, EvaluationCache):
            cache = EvaluationCache(cache_path=cache)
        return self._with(cache=cache)

    def with_mode(self, mode: ExecutionMode | None) -> "Study":
        """Force one execution mode on every candidate built from an explorer."""
        return self._with(mode=mode)

    def with_reference(self, reference_label: str) -> "Study":
        """Pick the normalization reference of the result's trade-off curve."""
        return self._with(reference_label=reference_label)

    # -------------------------------------------------------------- execution
    def candidates(self) -> list[DesignCandidate]:
        """The design points this study will evaluate, in order.

        A forced execution mode (:meth:`with_mode`) applies to every
        candidate regardless of the space kind — grid- and list-provided
        candidates are rebound to it, explorer axes are built with it.
        """
        if isinstance(self._space, DesignSpaceExplorer):
            return self._space.mix_candidates(self._mode)
        if isinstance(self._space, DesignGrid):
            candidates = self._space.candidate_list()
        else:
            candidates = list(self._space)
        if self._mode is not None:
            candidates = [replace(c, mode=self._mode) for c in candidates]
        return candidates

    def _resolve_evaluator(self) -> SearchEvaluator:
        if self._evaluator is not None:
            return self._evaluator
        if isinstance(self._space, DesignSpaceExplorer):
            return self._space.search_evaluator()
        return ModelEvaluator()

    def _resolve_cache(self) -> EvaluationCache | None:
        if self._cache is not None:
            return self._cache
        if isinstance(self._space, DesignSpaceExplorer):
            # Share the explorer's memo: studies warm sweeps and vice versa.
            return self._space.cache
        return None

    def engine(self) -> DesignSpaceSearch:
        """This study's search engine, created once and reused.

        The engine is shared across every :meth:`run` of this study *and*
        of studies derived from it by steps that leave the engine
        configuration untouched (:meth:`with_workload`, :meth:`with_mode`,
        :meth:`with_reference`) — so a campaign like
        ``[base.with_workload(m).run() for m in mixes]`` reuses one
        persistent worker pool and one per-entry evaluation memo, and
        overlapping mixes share their member-join computation.  Steps that
        change the engine configuration (evaluator, workers, chunk size,
        cache) start a fresh engine.  Release the pool with :meth:`close`
        or by using the study as a context manager.
        """
        if self._engine_cell[0] is None:
            self._engine_cell[0] = DesignSpaceSearch(
                evaluator=self._resolve_evaluator(),
                workers=self._workers,
                chunk_size=self._chunk_size,
                cache=self._resolve_cache(),
            )
        return self._engine_cell[0]

    def close(self) -> None:
        """Release the engine's persistent worker pool (if any)."""
        if self._engine_cell[0] is not None:
            self._engine_cell[0].close()

    def __enter__(self) -> "Study":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self) -> "StudyResult":
        """Search the space for the workload and wrap the analyses."""
        if self._workload is None:
            raise ConfigurationError(
                "this study has no workload; call .with_workload(...) first"
            )
        result = self.engine().search(self.candidates(), self._workload)
        return StudyResult(result, reference_label=self._reference_label)


class StudyResult:
    """Unified outcome of one study: raw search + trade-off analyses.

    Exposes the :class:`~repro.search.engine.SearchResult` selections
    (Pareto frontier, knee, EDP optimum, SLA-constrained best) directly,
    the normalized :class:`~repro.core.design_space.TradeoffCurve`
    analyses via :meth:`curve`, and the :mod:`repro.analysis.export`
    serializers as methods.
    """

    def __init__(self, search: SearchResult, reference_label: str | None = None):
        self.search = search
        self.reference_label = reference_label

    # -------------------------------------------------------- search surface
    @property
    def workload(self) -> Workload:
        return self.search.workload

    @property
    def points(self) -> list[EvaluatedDesign]:
        return self.search.points

    @property
    def feasible_points(self) -> list[EvaluatedDesign]:
        return self.search.feasible_points

    @property
    def infeasible_points(self) -> list[EvaluatedDesign]:
        return self.search.infeasible_points

    @property
    def evaluations(self) -> int:
        return self.search.evaluations

    @property
    def cache_hits(self) -> int:
        return self.search.cache_hits

    def pareto_frontier(self) -> list[EvaluatedDesign]:
        return self.search.pareto_frontier()

    def knee(self) -> EvaluatedDesign:
        return self.search.knee()

    def edp_optimal(self) -> EvaluatedDesign:
        return self.search.edp_optimal()

    def best_under_sla(self, max_time_s: float) -> EvaluatedDesign:
        return self.search.best_under_sla(max_time_s)

    def point(self, label: str) -> EvaluatedDesign:
        return self.search.point(label)

    def __len__(self) -> int:
        return len(self.search)

    def __iter__(self):
        return iter(self.search)

    # --------------------------------------------------------- curve surface
    def curve(self, reference_label: str | None = None) -> TradeoffCurve:
        """The feasible points as a normalized trade-off curve.

        Bit-identical to the legacy sweep outputs: same labels, same
        times, same energies, in the same (enumeration) order.
        """
        points = [
            DesignPoint(
                label=evaluated.label,
                cluster=evaluated.candidate.cluster(),
                time_s=evaluated.time_s,
                energy_j=evaluated.energy_j,
                prediction=evaluated.prediction,
            )
            for evaluated in self.feasible_points
        ]
        if not points:
            raise ModelError(
                f"no feasible design for {self.workload.name!r}"
            )
        return TradeoffCurve(
            points, reference_label=reference_label or self.reference_label
        )

    def normalized(self):
        """The paper's normalized (performance, energy) series."""
        return self.curve().normalized()

    def best_design(self, target_performance: float) -> DesignPoint:
        """Section 6 selection: least energy meeting a performance target."""
        return self.curve().best_design(target_performance)

    # ---------------------------------------------------------- export hooks
    def to_rows(self) -> list[dict]:
        """One plain dict per searched point (:func:`search_to_rows`)."""
        from repro.analysis.export import search_to_rows

        return search_to_rows(self.search)

    def to_json(self, indent: int | None = 2) -> str:
        """Full outcome — points, frontier, selections — as JSON."""
        from repro.analysis.export import search_to_json

        return search_to_json(self.search, indent=indent)

    def frontier_csv(self, frontier_only: bool = True) -> str:
        """The searched points as CSV (by default just the frontier)."""
        from repro.analysis.export import frontier_to_csv

        return frontier_to_csv(self.search, frontier_only=frontier_only)

    def curve_csv(self) -> str:
        """The normalized trade-off curve as CSV."""
        from repro.analysis.export import curve_to_csv

        return curve_to_csv(self.normalized())
