"""The ``Study`` facade: one fluent entry point for design-space studies.

Pre-redesign, evaluating a workload over a design space meant choosing
between three parallel APIs: :class:`~repro.core.design_space
.DesignSpaceExplorer` sweeps (single joins, one axis),
:func:`~repro.workloads.suite.suite_tradeoff_curve` (suites, no
memoization, no parallelism, no Pareto selection), and the raw
:class:`~repro.search.engine.DesignSpaceSearch` engine (grids, no
normalized-curve analyses).  A :class:`Study` unifies them::

    from repro import CLUSTER_V_NODE, WIMPY_LAPTOP_B, Study, DesignSpaceExplorer
    from repro.workloads.suite import WorkloadSuite

    explorer = DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)
    result = (
        Study(explorer)
        .with_workload(WorkloadSuite.of("nightly", q1, q2))
        .with_workers(4)
        .run()
    )
    result.pareto_frontier()          # SearchResult selections ...
    result.best_under_sla(30.0)
    result.curve().best_design(0.6)   # ... and TradeoffCurve analyses
    result.to_json()                  # analysis/export hooks

The space can be a :class:`~repro.search.grid.DesignGrid`, an explicit
candidate sequence, a :class:`DesignSpaceExplorer`, or an (optionally
open-ended) :class:`~repro.search.space.SearchSpace` — in the explorer
case the study adopts its evaluator configuration *and its evaluation
cache*, so studies, sweeps, and single-point evaluations all warm one
memo and legacy sweeps stay bit-identical.  The workload is anything
satisfying the :class:`~repro.workloads.protocol.Workload` protocol:
single joins, weighted suites, arrival-trace mixes — and *timed* traces
(:class:`~repro.workloads.protocol.TimedTrace`), which a stream-capable
evaluator replays under queueing so the result also answers latency
questions::

    result = (
        Study(grid)
        .with_workload(TimedTrace.from_trace("one-day", events))
        .with_evaluator(SimulatorEvaluator())
        .run()
    )
    result.points[0].latency.p99_s             # response times under queueing
    result.best_under_latency_sla(120.0)       # least energy, worst case <= 2 min

Besides the exhaustive :meth:`Study.run`, a study drives the adaptive
optimizers of :mod:`repro.search.optimize` over the same space through
:meth:`Study.optimize`::

    result = (
        Study(grid)                       # or a SearchSpace with open axes
        .with_workload(nightly_suite)
        .optimize(budget=400, optimizer="successive-halving", seed=7)
    )
    result.knee()                         # every StudyResult selection ...
    result.trajectory                     # ... plus the optimization path
    result.fresh_query_evaluations       # budget actually spent
    result.to_json()                      # includes the trajectory

``optimize`` accepts an optimizer name (``"random"``,
``"successive-halving"``, ``"local"``/``"evolutionary"``) with keyword
options, or a pre-built :class:`~repro.search.optimize.Optimizer`; it
shares the study's engine, so optimizer evaluations and later
:meth:`run` sweeps warm one another's cache (grid-compatible keys).  The
returned :class:`OptimizationResult` is a :class:`StudyResult` over the
full-fidelity archive, extended with the evaluations-vs-frontier-quality
trajectory and the stopping diagnosis.

Studies are immutable: every ``with_*`` step returns a new study, so
partially-configured studies can be shared and forked freely.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass, replace
from typing import Callable, Iterable, Sequence

from repro.core.design_space import DesignPoint, DesignSpaceExplorer, TradeoffCurve
from repro.costmodel.model import CostModel
from repro.errors import ConfigurationError, ModelError
from repro.pstore.plans import ExecutionMode
from repro.search.cache import EvaluationCache
from repro.search.engine import DesignSpaceSearch, SearchResult
from repro.search.evaluators import (
    CallableEvaluator,
    EvaluatedDesign,
    ModelEvaluator,
    SearchEvaluator,
)
from repro.search.grid import DesignCandidate, DesignGrid
from repro.search.optimize import (
    OptimizationLoop,
    Optimizer,
    TrajectoryPoint,
    build_optimizer,
)
from repro.search.space import SearchSpace
from repro.workloads.protocol import Workload, as_workload
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["OptimizationResult", "Study", "StudyResult"]


class Study:
    """A fluent, immutable description of one design-space study."""

    def __init__(
        self,
        space: (
            DesignGrid
            | DesignSpaceExplorer
            | SearchSpace
            | Iterable[DesignCandidate]
        ),
        *,
        workload: Workload | None = None,
        evaluator: SearchEvaluator | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
        cache: EvaluationCache | None = None,
        min_dispatch_tasks: int | None = None,
        mode: ExecutionMode | None = None,
        reference_label: str | None = None,
        cost_model: CostModel | None = None,
        _engine_cell: list | None = None,
    ):
        if isinstance(space, (DesignGrid, DesignSpaceExplorer, SearchSpace)):
            self._space: (
                DesignGrid
                | DesignSpaceExplorer
                | SearchSpace
                | tuple[DesignCandidate, ...]
            ) = space
        else:
            self._space = tuple(space)
            if not self._space:
                raise ConfigurationError("the design space is empty")
        self._workload = workload
        self._evaluator = evaluator
        self._workers = workers
        self._chunk_size = chunk_size
        self._cache = cache
        self._min_dispatch_tasks = min_dispatch_tasks
        self._mode = mode
        self._reference_label = reference_label
        self._cost_model = cost_model
        # One-slot holder for the lazily built engine, shared between
        # studies whose engine configuration is identical (see _with), so
        # workload-swapped studies reuse one pool and one entry memo.
        self._engine_cell: list = _engine_cell if _engine_cell is not None else [None]

    # ------------------------------------------------------------- fluent API
    #: settings a DesignSpaceSearch is built from; changing any of them
    #: means a derived study can no longer share this study's engine
    _ENGINE_SETTINGS = (
        "evaluator",
        "workers",
        "chunk_size",
        "cache",
        "min_dispatch_tasks",
        "cost_model",
    )

    def _with(self, **overrides) -> "Study":
        settings = {
            "workload": self._workload,
            "evaluator": self._evaluator,
            "workers": self._workers,
            "chunk_size": self._chunk_size,
            "cache": self._cache,
            "min_dispatch_tasks": self._min_dispatch_tasks,
            "mode": self._mode,
            "reference_label": self._reference_label,
            "cost_model": self._cost_model,
        }
        if not any(key in overrides for key in self._ENGINE_SETTINGS):
            settings["_engine_cell"] = self._engine_cell
        settings.update(overrides)
        return Study(self._space, **settings)

    def with_workload(self, workload: Workload | JoinWorkloadSpec) -> "Study":
        """Set the workload: a join spec, suite, trace mix, or any Workload."""
        return self._with(workload=as_workload(workload))

    def with_evaluator(
        self,
        evaluator: SearchEvaluator | Callable[..., tuple[float, float]],
    ) -> "Study":
        """Set the evaluator; bare ``(cluster, query)`` callables are adapted."""
        if not isinstance(evaluator, SearchEvaluator):
            if not callable(evaluator):
                raise ConfigurationError(
                    f"not an evaluator: {evaluator!r} (expected a SearchEvaluator "
                    "or a (cluster, query) -> (time_s, energy_j) callable)"
                )
            evaluator = CallableEvaluator(evaluator)
        return self._with(evaluator=evaluator)

    def with_workers(
        self,
        workers: int,
        chunk_size: int | None = None,
        min_dispatch_tasks: int | None = None,
    ) -> "Study":
        """Fan cache misses out over ``workers`` processes.

        ``min_dispatch_tasks`` tunes the engine's cheap-batch threshold
        (batches below it stay serial; ``1`` forces fan-out, ``None``
        keeps the engine default).
        """
        return self._with(
            workers=workers,
            chunk_size=chunk_size,
            min_dispatch_tasks=min_dispatch_tasks,
        )

    def with_cache(self, cache: "EvaluationCache | str") -> "Study":
        """Use an explicit cache, or a path for a disk-backed one."""
        if not isinstance(cache, EvaluationCache):
            cache = EvaluationCache(cache_path=cache)
        return self._with(cache=cache)

    def with_mode(self, mode: ExecutionMode | None) -> "Study":
        """Force one execution mode on every candidate built from an explorer."""
        return self._with(mode=mode)

    def with_cost_model(self, cost_model: CostModel | None) -> "Study":
        """Price every evaluation in dollars and grams of CO₂.

        The :class:`~repro.costmodel.model.CostModel` is applied to this
        study's evaluator, so every feasible record carries ``carbon_g``
        and ``price_usd`` — enabling the TCO selections
        (:meth:`StudyResult.best_under_budget` /
        :meth:`~StudyResult.best_under_carbon`) and cost-axis objectives
        (``result.knee(objectives=("time_s", "energy_j", "price_usd"))``).
        Cost-model records cache under distinct keys, so differently
        priced studies never alias; ``None`` removes the model.
        """
        return self._with(cost_model=cost_model)

    def with_reference(self, reference_label: str) -> "Study":
        """Pick the normalization reference of the result's trade-off curve."""
        return self._with(reference_label=reference_label)

    # -------------------------------------------------------------- execution
    def candidates(self) -> list[DesignCandidate]:
        """The design points this study will evaluate, in order.

        A forced execution mode (:meth:`with_mode`) applies to every
        candidate regardless of the space kind — grid- and list-provided
        candidates are rebound to it, explorer axes are built with it.
        """
        if isinstance(self._space, DesignSpaceExplorer):
            return self._space.mix_candidates(self._mode)
        if isinstance(self._space, SearchSpace):
            if not self._space.finite:
                raise ConfigurationError(
                    "this study's SearchSpace has open RangeAxis dimensions "
                    "and cannot be enumerated; use .optimize(...) instead "
                    "of .run()"
                )
            candidates = self._space.candidate_list()
        elif isinstance(self._space, DesignGrid):
            candidates = self._space.candidate_list()
        else:
            candidates = list(self._space)
        if self._mode is not None:
            # PolicyCandidates delegate mode through with_mode (mode is a
            # property there, not a replace()-able field).
            candidates = [
                c.with_mode(self._mode)
                if hasattr(c, "with_mode")
                else replace(c, mode=self._mode)
                for c in candidates
            ]
        return candidates

    def search_space(self) -> SearchSpace:
        """This study's space as a :class:`SearchSpace` (for optimizers).

        A grid becomes its exact discrete space
        (:meth:`SearchSpace.from_grid`, so optimizer evaluations share
        cache keys with grid sweeps); explorer and candidate-list spaces
        become finite list-backed spaces; a :class:`SearchSpace` passes
        through.  A forced execution mode (:meth:`with_mode`) applies in
        every case.
        """
        if isinstance(self._space, SearchSpace):
            space = self._space
            return space if self._mode is None else space.with_mode(self._mode)
        if isinstance(self._space, DesignGrid):
            grid = self._space
            if self._mode is not None:
                grid = replace(grid, modes=(self._mode,))
            return SearchSpace.from_grid(grid)
        return SearchSpace.from_candidates(self.candidates())

    def _resolve_evaluator(self) -> SearchEvaluator:
        if self._evaluator is not None:
            evaluator = self._evaluator
        elif isinstance(self._space, DesignSpaceExplorer):
            evaluator = self._space.search_evaluator()
        else:
            evaluator = ModelEvaluator()
        if self._cost_model is None:
            return evaluator
        if is_dataclass(evaluator) and any(
            f.name == "cost_model" for f in fields(evaluator)
        ):
            return replace(evaluator, cost_model=self._cost_model)
        raise ConfigurationError(
            f"evaluator {type(evaluator).__name__} does not accept a cost "
            "model; use ModelEvaluator/SimulatorEvaluator (or construct "
            "the evaluator with cost_model= yourself)"
        )

    def _resolve_cache(self) -> EvaluationCache | None:
        if self._cache is not None:
            return self._cache
        if isinstance(self._space, DesignSpaceExplorer):
            # Share the explorer's memo: studies warm sweeps and vice versa.
            return self._space.cache
        return None

    def engine(self) -> DesignSpaceSearch:
        """This study's search engine, created once and reused.

        The engine is shared across every :meth:`run` of this study *and*
        of studies derived from it by steps that leave the engine
        configuration untouched (:meth:`with_workload`, :meth:`with_mode`,
        :meth:`with_reference`) — so a campaign like
        ``[base.with_workload(m).run() for m in mixes]`` reuses one
        persistent worker pool and one per-entry evaluation memo, and
        overlapping mixes share their member-join computation.  Steps that
        change the engine configuration (evaluator, workers, chunk size,
        cache) start a fresh engine.  Release the pool with :meth:`close`
        or by using the study as a context manager.
        """
        if self._engine_cell[0] is None:
            settings = dict(
                evaluator=self._resolve_evaluator(),
                workers=self._workers,
                chunk_size=self._chunk_size,
                cache=self._resolve_cache(),
            )
            if self._min_dispatch_tasks is not None:
                settings["min_dispatch_tasks"] = self._min_dispatch_tasks
            self._engine_cell[0] = DesignSpaceSearch(**settings)
        return self._engine_cell[0]

    def close(self) -> None:
        """Release the engine's persistent worker pool (if any)."""
        if self._engine_cell[0] is not None:
            self._engine_cell[0].close()

    def __enter__(self) -> "Study":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self) -> "StudyResult":
        """Search the space for the workload and wrap the analyses."""
        if self._workload is None:
            raise ConfigurationError(
                "this study has no workload; call .with_workload(...) first"
            )
        result = self.engine().search(self.candidates(), self._workload)
        return StudyResult(result, reference_label=self._reference_label)

    def optimize(
        self,
        budget: int | None = None,
        optimizer: "Optimizer | str" = "successive-halving",
        *,
        seed: int = 0,
        patience: int | None = None,
        objectives: Sequence | None = None,
        **optimizer_options,
    ) -> "OptimizationResult":
        """Search the space adaptively instead of exhaustively.

        ``budget`` caps fresh per-entry evaluations (the same currency as
        :attr:`~repro.search.engine.SearchResult.query_evaluations`);
        ``patience`` stops after that many consecutive batches without a
        frontier change; ``optimizer`` is a name — ``"random"``,
        ``"successive-halving"`` (default), ``"local"`` — with
        ``optimizer_options`` forwarded to its constructor, or a
        pre-built :class:`~repro.search.optimize.Optimizer`.  The study's
        engine (pool, evaluator, cache) is shared with :meth:`run`, so an
        optimizer run warms a later exhaustive sweep and vice versa.

        ``objectives`` steers the optimizer's frontier-driven decisions
        (archive frontier, convergence, promotion ranks) under those axes
        — e.g. ``("time_s", "energy_j", "carbon_g")`` on a
        cost-model-priced study; ``None`` keeps the classic (time,
        energy) pair.
        """
        if self._workload is None:
            raise ConfigurationError(
                "this study has no workload; call .with_workload(...) first"
            )
        loop = OptimizationLoop(
            self.engine(),
            self.search_space(),
            self._workload,
            build_optimizer(optimizer, **optimizer_options),
            budget=budget,
            patience=patience,
            seed=seed,
            objectives=objectives,
        )
        return loop.run(reference_label=self._reference_label)

    def report(self, title: str | None = None) -> str:
        """Render the active telemetry registry as a stage-time report.

        Call :func:`repro.telemetry.enable` before :meth:`run` (or
        :meth:`optimize`) and this returns the recorded breakdown —
        per-stage search spans, worker chunk times, cache and simulator
        counters — as printable text.  With telemetry disabled (the
        default) the report says so instead of being empty.  The registry
        is cumulative across runs; :func:`repro.telemetry.reset` starts a
        fresh window.
        """
        from repro.telemetry import get_telemetry
        from repro.telemetry.report import render_report

        return render_report(
            get_telemetry(),
            title=title if title is not None else "study telemetry",
        )


class StudyResult:
    """Unified outcome of one study: raw search + trade-off analyses.

    Exposes the :class:`~repro.search.engine.SearchResult` selections
    (Pareto frontier, knee, EDP optimum, SLA-constrained best) directly,
    the normalized :class:`~repro.core.design_space.TradeoffCurve`
    analyses via :meth:`curve`, and the :mod:`repro.analysis.export`
    serializers as methods.
    """

    def __init__(self, search: SearchResult, reference_label: str | None = None):
        self.search = search
        self.reference_label = reference_label

    # -------------------------------------------------------- search surface
    @property
    def workload(self) -> Workload:
        return self.search.workload

    @property
    def points(self) -> list[EvaluatedDesign]:
        return self.search.points

    @property
    def feasible_points(self) -> list[EvaluatedDesign]:
        return self.search.feasible_points

    @property
    def infeasible_points(self) -> list[EvaluatedDesign]:
        return self.search.infeasible_points

    @property
    def evaluations(self) -> int:
        return self.search.evaluations

    @property
    def cache_hits(self) -> int:
        return self.search.cache_hits

    def pareto_frontier(
        self, objectives: Sequence | None = None
    ) -> list[EvaluatedDesign]:
        return self.search.pareto_frontier(objectives=objectives)

    def knee(self, objectives: Sequence | None = None) -> EvaluatedDesign:
        return self.search.knee(objectives=objectives)

    def edp_optimal(self) -> EvaluatedDesign:
        return self.search.edp_optimal()

    def best_under_sla(self, max_time_s: float) -> EvaluatedDesign:
        return self.search.best_under_sla(max_time_s)

    def best_under_budget(self, max_usd: float) -> EvaluatedDesign:
        """Fastest design within a dollar budget (needs a cost model)."""
        return self.search.best_under_budget(max_usd)

    def best_under_carbon(self, max_g: float) -> EvaluatedDesign:
        """Fastest design within a carbon cap (needs a cost model)."""
        return self.search.best_under_carbon(max_g)

    def best_under_latency_sla(
        self, max_response_s: float, metric: str = "max"
    ) -> EvaluatedDesign:
        """Minimum-energy design meeting a per-query response-time SLA.

        Available when the study's workload was a timed trace evaluated
        through a stream-capable evaluator: each point then carries a
        :class:`~repro.search.evaluators.LatencyProfile` and ``metric``
        picks the binding statistic (``"max"`` worst case by default,
        or ``"p99"`` / ``"p95"`` / ``"p50"`` / ``"mean"``).
        """
        return self.search.best_under_latency_sla(max_response_s, metric=metric)

    def best_under_degraded_sla(
        self,
        max_response_s: float,
        metric: str = "max",
        allow_drops: bool = False,
    ) -> EvaluatedDesign:
        """Minimum-energy design meeting the SLA *under fault injection*.

        Available when the study's workload was a fault-injected trace
        (``TimedTrace.with_faults``): each point then carries a
        ``degraded_latency`` profile measured while nodes crashed,
        straggled, or lost network capacity.  Designs that shed queries
        are excluded unless ``allow_drops``.
        """
        return self.search.best_under_degraded_sla(
            max_response_s, metric=metric, allow_drops=allow_drops
        )

    def point(self, label: str) -> EvaluatedDesign:
        return self.search.point(label)

    def __len__(self) -> int:
        return len(self.search)

    def __iter__(self):
        return iter(self.search)

    # --------------------------------------------------------- curve surface
    def curve(self, reference_label: str | None = None) -> TradeoffCurve:
        """The feasible points as a normalized trade-off curve.

        Bit-identical to the legacy sweep outputs: same labels, same
        times, same energies, in the same (enumeration) order.
        """
        points = [
            DesignPoint(
                label=evaluated.label,
                cluster=evaluated.candidate.cluster(),
                time_s=evaluated.time_s,
                energy_j=evaluated.energy_j,
                prediction=evaluated.prediction,
            )
            for evaluated in self.feasible_points
        ]
        if not points:
            raise ModelError(
                f"no feasible design for {self.workload.name!r}"
            )
        return TradeoffCurve(
            points, reference_label=reference_label or self.reference_label
        )

    def normalized(self):
        """The paper's normalized (performance, energy) series."""
        return self.curve().normalized()

    def best_design(self, target_performance: float) -> DesignPoint:
        """Section 6 selection: least energy meeting a performance target."""
        return self.curve().best_design(target_performance)

    # ---------------------------------------------------------- export hooks
    def to_rows(self) -> list[dict]:
        """One plain dict per searched point (:func:`search_to_rows`)."""
        from repro.analysis.export import search_to_rows

        return search_to_rows(self.search)

    def to_json(self, indent: int | None = 2) -> str:
        """Full outcome — points, frontier, selections — as JSON."""
        from repro.analysis.export import search_to_json

        return search_to_json(self.search, indent=indent)

    def frontier_csv(self, frontier_only: bool = True) -> str:
        """The searched points as CSV (by default just the frontier)."""
        from repro.analysis.export import frontier_to_csv

        return frontier_to_csv(self.search, frontier_only=frontier_only)

    def curve_csv(self) -> str:
        """The normalized trade-off curve as CSV."""
        from repro.analysis.export import curve_to_csv

        return curve_to_csv(self.normalized())

    def tco_csv(
        self,
        objectives: Sequence = ("time_s", "energy_j", "price_usd", "carbon_g"),
    ) -> str:
        """The multi-objective (TCO) frontier as CSV.

        Defaults to the full four-axis time/energy/price/carbon trade;
        needs a cost model when a cost axis is selected
        (:func:`~repro.analysis.export.tco_frontier_csv`).
        """
        from repro.analysis.export import tco_frontier_csv

        return tco_frontier_csv(self.search, objectives=objectives)


class OptimizationResult(StudyResult):
    """A :class:`StudyResult` plus the optimization trajectory.

    Produced by :meth:`Study.optimize` /
    :meth:`~repro.search.optimize.OptimizationLoop.run`.  The underlying
    :class:`~repro.search.engine.SearchResult` holds the *archive* — every
    full-fidelity evaluation in discovery order — so all the selections
    and exports work unchanged: ``pareto_frontier()``, ``knee()``,
    ``best_under_sla()``, ``curve()``, ``to_rows()``...  On top of that:

    * :attr:`trajectory` — one
      :class:`~repro.search.optimize.TrajectoryPoint` per optimizer batch
      (the evaluations-vs-frontier-quality curve);
    * :attr:`fresh_query_evaluations` — fresh per-entry evaluator calls
      the whole optimization performed, rungs included (the budget
      currency);
    * :attr:`stop_reason` — ``"optimizer-finished"``,
      ``"budget-exhausted"``, or ``"converged"``;
    * :meth:`trajectory_rows` / :meth:`to_json` — exports via
      :mod:`repro.analysis.export`.
    """

    def __init__(
        self,
        search: SearchResult,
        trajectory: "tuple[TrajectoryPoint, ...]",
        optimizer_name: str,
        budget: int | None,
        stop_reason: str,
        reference_label: str | None = None,
    ):
        super().__init__(search, reference_label=reference_label)
        self.trajectory = trajectory
        self.optimizer_name = optimizer_name
        self.budget = budget
        self.stop_reason = stop_reason

    @property
    def fresh_query_evaluations(self) -> int:
        """Fresh per-entry evaluator calls spent, rungs included."""
        return self.search.query_evaluations

    def trajectory_rows(self) -> list[dict]:
        """The trajectory as plain dicts (:func:`trajectory_to_rows`)."""
        from repro.analysis.export import trajectory_to_rows

        return trajectory_to_rows(self)

    def to_json(self, indent: int | None = 2) -> str:
        """Search payload plus optimizer metadata and the trajectory."""
        from repro.analysis.export import optimization_to_json

        return optimization_to_json(self, indent=indent)
