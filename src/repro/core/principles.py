"""The Section 6 cluster design principles as an executable advisor.

Figure 12 summarizes the paper:

(a) **Highly scalable query** — energy is flat in cluster size, so use all
    available nodes (fastest point costs nothing extra).
(b) **Bottlenecked query, homogeneous cluster** — smaller clusters save
    energy; shrink to the fewest nodes still meeting the performance
    target.
(c) **Bottlenecked query, heterogeneous option** — substituting Wimpy for
    Beefy nodes can beat the best homogeneous design on *both* energy and
    performance (points below the EDP curve).

:func:`recommend_design` reproduces that decision procedure given trade-off
curves for the candidate designs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.design_space import DesignPoint, TradeoffCurve
from repro.errors import ModelError

__all__ = ["Principle", "DesignRecommendation", "classify_scalability", "recommend_design"]

#: Energy ratios within this band of 1.0 count as "flat" (ideal speedup).
_FLAT_ENERGY_TOLERANCE = 0.05


class Principle(enum.Enum):
    """Which Figure 12 case applied."""

    SCALABLE_USE_ALL_NODES = "scalable-use-all-nodes"  # Fig 12(a)
    BOTTLENECKED_DOWNSIZE = "bottlenecked-downsize"  # Fig 12(b)
    HETEROGENEOUS_SUBSTITUTION = "heterogeneous-substitution"  # Fig 12(c)


@dataclass(frozen=True)
class DesignRecommendation:
    """The advisor's output: a design plus the principle that selected it."""

    principle: Principle
    design: DesignPoint
    rationale: str
    normalized_performance: float
    normalized_energy: float


def classify_scalability(size_curve: TradeoffCurve) -> bool:
    """True when the workload scales ideally (energy flat across sizes).

    The paper's criterion from Figure 2: for partitionable queries the
    energy-consumption ratio stays roughly constant as the cluster shrinks,
    because the performance loss exactly offsets the power reduction.
    """
    normalized = size_curve.normalized()
    return all(
        abs(point.energy - 1.0) <= _FLAT_ENERGY_TOLERANCE for point in normalized
    )


def recommend_design(
    homogeneous_curve: TradeoffCurve,
    target_performance: float,
    heterogeneous_curve: TradeoffCurve | None = None,
) -> DesignRecommendation:
    """Apply the Section 6 procedure.

    Parameters
    ----------
    homogeneous_curve:
        A homogeneous size sweep (largest cluster as reference), e.g.
        8N..2N of Beefy nodes.
    target_performance:
        Minimum acceptable normalized performance (e.g. 0.6 for "a 40%
        performance loss is acceptable").
    heterogeneous_curve:
        Optional Beefy/Wimpy mix sweep sharing the same reference design.
    """
    if not 0 < target_performance <= 1.0:
        raise ModelError(
            f"target performance must be in (0, 1], got {target_performance}"
        )

    # Case (a): scalable workload -> use everything.
    if classify_scalability(homogeneous_curve):
        best = homogeneous_curve.reference
        norm = homogeneous_curve.normalized_point(best.label)
        return DesignRecommendation(
            principle=Principle.SCALABLE_USE_ALL_NODES,
            design=best,
            rationale=(
                "energy is flat across cluster sizes (ideal speedup); the "
                "largest cluster is fastest at no extra energy"
            ),
            normalized_performance=norm.performance,
            normalized_energy=norm.energy,
        )

    # Case (b): bottlenecked -> fewest nodes still meeting the target.
    homo_best = homogeneous_curve.best_design(target_performance)
    homo_norm = homogeneous_curve.normalized_point(homo_best.label)

    # Case (c): heterogeneous candidates, if offered.
    if heterogeneous_curve is not None:
        try:
            hetero_best = heterogeneous_curve.best_design(target_performance)
        except ModelError:
            hetero_best = None
        if hetero_best is not None:
            hetero_norm = heterogeneous_curve.normalized_point(hetero_best.label)
            if hetero_norm.energy < homo_norm.energy:
                return DesignRecommendation(
                    principle=Principle.HETEROGENEOUS_SUBSTITUTION,
                    design=hetero_best,
                    rationale=(
                        f"{hetero_best.label} consumes "
                        f"{(1 - hetero_norm.energy / homo_norm.energy):.0%} less "
                        f"energy than the best homogeneous design "
                        f"({homo_best.label}) while meeting the "
                        f"{target_performance:.0%} performance target"
                    ),
                    normalized_performance=hetero_norm.performance,
                    normalized_energy=hetero_norm.energy,
                )

    return DesignRecommendation(
        principle=Principle.BOTTLENECKED_DOWNSIZE,
        design=homo_best,
        rationale=(
            "the workload is bottlenecked (non-linear speedup); the smallest "
            f"cluster meeting the {target_performance:.0%} target minimizes energy"
        ),
        normalized_performance=homo_norm.performance,
        normalized_energy=homo_norm.energy,
    )
