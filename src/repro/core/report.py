"""One-call cluster design report: the library's findings, assembled.

:func:`design_report` is the downstream-facing entry point: given a join
workload, the candidate node types, and a performance target, it runs the
whole pipeline — planning, simulation-based bottleneck diagnosis, design
space exploration, the Section 6 principles, and a network-trend
sensitivity check — and renders a single text report an operator can act
on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bottlenecks import bottleneck_breakdown
from repro.analysis.report import render_normalized_curve, render_table
from repro.core.design_space import DesignSpaceExplorer, TradeoffCurve
from repro.core.principles import DesignRecommendation, recommend_design
from repro.core.sensitivity import sweep_parameter
from repro.errors import ModelError, ReproError
from repro.hardware.node import NodeSpec
from repro.pstore.engine import PStore, PStoreConfig
from repro.pstore.plans import ExecutionMode
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["DesignReport", "design_report"]


@dataclass
class DesignReport:
    """Structured output of :func:`design_report`."""

    workload: JoinWorkloadSpec
    plan_text: str
    bottlenecks: dict[str, float]
    homogeneous_curve: TradeoffCurve
    heterogeneous_curve: TradeoffCurve | None
    recommendation: DesignRecommendation
    network_sensitivity: list
    text: str

    def __str__(self) -> str:
        return self.text


def design_report(
    query: JoinWorkloadSpec,
    beefy: NodeSpec,
    wimpy: NodeSpec,
    cluster_size: int = 8,
    target_performance: float = 0.6,
    warm_cache: bool = False,
    network_values: tuple[float, ...] | None = None,
) -> DesignReport:
    """Produce the full design study for one workload.

    Sections: execution plan, measured bottleneck profile (simulated on the
    all-Beefy reference), homogeneous size sweep, heterogeneous mix sweep,
    the Section 6 recommendation, and how the answer shifts with network
    bandwidth.
    """
    if cluster_size < 2:
        raise ReproError("a design study needs at least 2 nodes")

    from repro.hardware.cluster import ClusterSpec

    reference = ClusterSpec.homogeneous(beefy, cluster_size)
    engine = PStore(reference, config=PStoreConfig(warm_cache=warm_cache))

    # 1. plan + bottleneck diagnosis on the reference cluster
    plan = engine.plan(query)
    simulated = engine.simulate(plan)
    bottlenecks = bottleneck_breakdown(simulated)

    # 2. design space: homogeneous sizes and Beefy/Wimpy mixes
    explorer = DesignSpaceExplorer(
        beefy, wimpy, cluster_size, warm_cache=warm_cache,
        strict_paper_conditions=True,
    )
    sizes = tuple(range(cluster_size, 1, -2))
    homo = explorer.sweep_sizes(query, sizes=sizes, mode=ExecutionMode.HOMOGENEOUS)
    try:
        hetero = explorer.sweep(query)
    except ModelError:
        hetero = None

    # 3. the Section 6 decision
    recommendation = recommend_design(
        homo, target_performance, heterogeneous_curve=hetero
    )

    # 4. does the answer survive a faster interconnect?
    values = network_values or (
        beefy.nic_bandwidth_mbps,
        beefy.nic_bandwidth_mbps * 4,
    )
    try:
        sensitivity = sweep_parameter(
            query, beefy, wimpy, "network_mbps", list(values),
            cluster_size=cluster_size,
            target_performance=target_performance,
            warm_cache=warm_cache,
        )
    except ModelError:
        sensitivity = []

    # 5. render
    sections = [
        f"DESIGN REPORT: {query}",
        "",
        "-- execution plan (reference cluster) " + "-" * 20,
        plan.explain(),
        "",
        "-- bottleneck profile (simulated flow-time shares) " + "-" * 8,
        render_table(
            ("resource", "share of flow-time"),
            [(kind, f"{share:.0%}") for kind, share in bottlenecks.items()],
        ),
        "",
        "-- homogeneous size sweep " + "-" * 32,
        render_normalized_curve("vs largest cluster", homo.normalized()),
        "",
    ]
    if hetero is not None:
        sections += [
            "-- Beefy/Wimpy mixes " + "-" * 37,
            render_normalized_curve("vs all-Beefy", hetero.normalized()),
            "",
        ]
    sections += [
        "-- recommendation " + "-" * 40,
        f"principle: {recommendation.principle.value}",
        f"design:    {recommendation.design.label}",
        f"expected:  {recommendation.normalized_performance:.0%} performance, "
        f"{recommendation.normalized_energy:.0%} energy (vs reference)",
        f"why:       {recommendation.rationale}",
    ]
    if sensitivity:
        sections += [
            "",
            "-- network-trend check " + "-" * 35,
            render_table(
                ("interconnect", "best design", "energy"),
                [
                    (f"{p.value:g} MB/s", p.best_label, f"{p.best_energy:.2f}")
                    for p in sensitivity
                ],
            ),
        ]

    return DesignReport(
        workload=query,
        plan_text=plan.explain(),
        bottlenecks=bottlenecks,
        homogeneous_curve=homo,
        heterogeneous_curve=hetero,
        recommendation=recommendation,
        network_sensitivity=sensitivity,
        text="\n".join(sections),
    )
