"""Energy-Delay-Product metrics and normalized trade-off points.

Every figure in the paper plots *normalized energy consumption* against
*normalized performance* relative to a reference configuration, with a
dotted **constant-EDP** curve: points trading x% performance for exactly x%
energy.  In normalized coordinates that curve is simply
``energy_ratio == performance_ratio``, so:

* points **above** the curve give up proportionally more performance than
  they save in energy (the Figure 1a situation);
* points **below** it save proportionally more energy — the design points
  the paper is hunting for (Figure 1b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ModelError

__all__ = [
    "edp",
    "NormalizedPoint",
    "normalized_point",
    "normalized_series",
    "constant_edp_energy",
]


def edp(energy_j: float, delay_s: float) -> float:
    """Energy-delay product in joule-seconds (lower is better)."""
    if energy_j < 0 or delay_s < 0:
        raise ModelError(f"EDP inputs must be >= 0: energy={energy_j}, delay={delay_s}")
    return energy_j * delay_s


@dataclass(frozen=True)
class NormalizedPoint:
    """One design point in the paper's normalized coordinates."""

    label: str
    performance: float  # (1/T) / (1/T_ref) = T_ref / T
    energy: float  # E / E_ref

    def __post_init__(self) -> None:
        if self.performance <= 0 or self.energy < 0:
            raise ModelError(
                f"{self.label}: invalid normalized point "
                f"(performance={self.performance}, energy={self.energy})"
            )

    @property
    def edp_ratio(self) -> float:
        """Normalized EDP: (E/E_ref) * (T/T_ref) = energy / performance."""
        return self.energy / self.performance

    @property
    def below_edp_curve(self) -> bool:
        """True when the point saves proportionally more energy than it
        loses in performance (normalized EDP < 1)."""
        return self.edp_ratio < 1.0

    def edp_margin(self) -> float:
        """Distance below (+) or above (-) the constant-EDP curve."""
        return self.performance - self.energy


def normalized_point(
    label: str,
    time_s: float,
    energy_j: float,
    reference_time_s: float,
    reference_energy_j: float,
) -> NormalizedPoint:
    """Normalize one (time, energy) measurement against a reference."""
    if min(time_s, reference_time_s) <= 0 or reference_energy_j <= 0:
        raise ModelError("times and reference energy must be > 0")
    return NormalizedPoint(
        label=label,
        performance=reference_time_s / time_s,
        energy=energy_j / reference_energy_j,
    )


def normalized_series(
    points: Sequence[tuple[str, float, float]],
    reference_label: str | None = None,
) -> list[NormalizedPoint]:
    """Normalize a series of ``(label, time_s, energy_j)`` measurements.

    The reference is the named point, or the first point when omitted —
    the paper normalizes against the largest / all-Beefy configuration,
    which its experiments list first.
    """
    if not points:
        raise ModelError("no points to normalize")
    labels = [label for label, _, _ in points]
    if reference_label is None:
        reference_label = labels[0]
    if reference_label not in labels:
        raise ModelError(f"reference {reference_label!r} not among {labels}")
    _, ref_time, ref_energy = points[labels.index(reference_label)]
    return [
        normalized_point(label, time_s, energy_j, ref_time, ref_energy)
        for label, time_s, energy_j in points
    ]


def constant_edp_energy(performance: float) -> float:
    """Energy ratio on the constant-EDP curve at a given performance ratio."""
    if performance <= 0:
        raise ModelError(f"performance ratio must be > 0, got {performance}")
    return performance
