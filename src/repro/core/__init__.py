"""The paper's primary contribution: model-driven energy-efficient design.

* :mod:`repro.core.model` — the Section 5.3 analytical performance/energy
  model of P-store (homogeneous equations verbatim from the paper,
  heterogeneous ingestion-bound model derived from Section 5.4's
  description).
* :mod:`repro.core.edp` — Energy-Delay-Product metrics and normalized
  energy-vs-performance points.
* :mod:`repro.core.design_space` — enumerating Beefy/Wimpy mixes and
  homogeneous sizes, producing trade-off curves, finding knees and best
  designs under performance targets.
* :mod:`repro.core.principles` — the Section 6 design principles as an
  executable advisor (Figure 12).
* :mod:`repro.core.validation` — model-vs-observation comparison used by
  the Figure 8/9 experiments.
"""

from repro.core.design_space import DesignPoint, DesignSpaceExplorer, TradeoffCurve
from repro.core.edp import NormalizedPoint, edp, normalized_series
from repro.core.model import (
    HashJoinQuery,
    ModelConstants,
    ModelParameters,
    PhasePrediction,
    Prediction,
    PStoreModel,
)
from repro.core.principles import DesignRecommendation, recommend_design
from repro.core.report import DesignReport, design_report
from repro.core.sensitivity import SensitivityPoint, sweep_parameter
from repro.core.validation import ValidationReport, ValidationRow, compare_normalized

__all__ = [
    "PStoreModel",
    "ModelConstants",
    "ModelParameters",
    "HashJoinQuery",
    "Prediction",
    "PhasePrediction",
    "edp",
    "normalized_series",
    "NormalizedPoint",
    "DesignPoint",
    "DesignSpaceExplorer",
    "TradeoffCurve",
    "DesignRecommendation",
    "recommend_design",
    "DesignReport",
    "design_report",
    "SensitivityPoint",
    "sweep_parameter",
    "ValidationReport",
    "ValidationRow",
    "compare_normalized",
]
