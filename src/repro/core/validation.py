"""Model-vs-observation validation (the Figure 8/9 methodology).

The paper validates its analytical model against measured 2-Beefy/2-Wimpy
runs by comparing *normalized* response times and energies — each series is
divided by its own 100%-LINEITEM-selectivity entry, and the model is deemed
validated when the normalized values agree within 5% (homogeneous) / 10%
(heterogeneous).

This module provides exactly that comparison, with the simulator playing
the role of the physical cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ModelError

__all__ = ["ValidationRow", "ValidationReport", "normalize_by", "compare_normalized"]


@dataclass(frozen=True)
class ValidationRow:
    """One workload point: observed vs modeled normalized values."""

    label: str
    observed: float
    modeled: float

    @property
    def error(self) -> float:
        """Absolute normalized-value difference (the paper's error metric)."""
        return abs(self.observed - self.modeled)


@dataclass(frozen=True)
class ValidationReport:
    """All rows of one validation figure plus the headline max error."""

    metric: str
    rows: tuple[ValidationRow, ...]

    @property
    def max_error(self) -> float:
        return max(row.error for row in self.rows)

    def within(self, tolerance: float) -> bool:
        return self.max_error <= tolerance

    def __str__(self) -> str:
        lines = [f"validation of {self.metric} (max error {self.max_error:.3f})"]
        lines.extend(
            f"  {row.label}: observed={row.observed:.3f} modeled={row.modeled:.3f} "
            f"(err {row.error:.3f})"
            for row in self.rows
        )
        return "\n".join(lines)


def normalize_by(values: Mapping[str, float], reference: str) -> dict[str, float]:
    """Divide a series by its reference entry."""
    if reference not in values:
        raise ModelError(f"reference {reference!r} not in {sorted(values)}")
    denom = values[reference]
    if denom <= 0:
        raise ModelError(f"reference value must be > 0, got {denom}")
    return {label: value / denom for label, value in values.items()}


def compare_normalized(
    metric: str,
    observed: Mapping[str, float],
    modeled: Mapping[str, float],
    reference: str,
    order: Sequence[str] | None = None,
) -> ValidationReport:
    """Normalize both series by ``reference`` and compare label-by-label."""
    if set(observed) != set(modeled):
        raise ModelError(
            f"label mismatch: observed={sorted(observed)} modeled={sorted(modeled)}"
        )
    observed_norm = normalize_by(observed, reference)
    modeled_norm = normalize_by(modeled, reference)
    labels = list(order) if order is not None else sorted(observed)
    rows = tuple(
        ValidationRow(
            label=label, observed=observed_norm[label], modeled=modeled_norm[label]
        )
        for label in labels
    )
    return ValidationReport(metric=metric, rows=rows)
