"""Sensitivity analysis: how hardware trends move the best design.

Section 4.1 argues the network-CPU performance gap "is likely to persist
into the near future" — but the model lets us *check* what happens if it
does not.  :func:`sweep_parameter` re-runs the design-space exploration
while scaling one hardware dimension (network, disk, Wimpy CPU, Wimpy
power draw) and reports how the energy-optimal design under a performance
target migrates.

The headline finding this enables: a faster interconnect removes the
ingestion bottleneck that Figure 10(b) blames for heterogenous designs'
poor showing — with enough network, Wimpy substitution wins even at high
selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.design_space import DesignSpaceExplorer, TradeoffCurve
from repro.errors import ModelError
from repro.hardware.node import NodeSpec
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["SensitivityPoint", "PARAMETERS", "sweep_parameter"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Best design (under the target) at one parameter value."""

    parameter: str
    value: float
    best_label: str
    best_energy: float  # normalized vs the all-Beefy reference
    best_performance: float
    curve: TradeoffCurve

    def __str__(self) -> str:
        return (
            f"{self.parameter}={self.value:g}: {self.best_label} "
            f"(energy {self.best_energy:.2f}, perf {self.best_performance:.2f})"
        )


def _scale_network(beefy: NodeSpec, wimpy: NodeSpec, value: float):
    return (
        beefy.with_overrides(nic_bandwidth_mbps=value),
        wimpy.with_overrides(nic_bandwidth_mbps=value),
    )


def _scale_disk(beefy: NodeSpec, wimpy: NodeSpec, value: float):
    return (
        beefy.with_overrides(disk_bandwidth_mbps=value),
        wimpy.with_overrides(disk_bandwidth_mbps=value),
    )


def _scale_wimpy_cpu(beefy: NodeSpec, wimpy: NodeSpec, value: float):
    return beefy, wimpy.with_overrides(cpu_bandwidth_mbps=value)


def _scale_wimpy_memory(beefy: NodeSpec, wimpy: NodeSpec, value: float):
    return beefy, wimpy.with_overrides(memory_mb=value)


Applier = Callable[[NodeSpec, NodeSpec, float], tuple[NodeSpec, NodeSpec]]

#: sweepable hardware dimensions (name -> spec transformer)
PARAMETERS: dict[str, Applier] = {
    "network_mbps": _scale_network,
    "disk_mbps": _scale_disk,
    "wimpy_cpu_mbps": _scale_wimpy_cpu,
    "wimpy_memory_mb": _scale_wimpy_memory,
}


def sweep_parameter(
    query: JoinWorkloadSpec,
    beefy: NodeSpec,
    wimpy: NodeSpec,
    parameter: str,
    values: Sequence[float],
    cluster_size: int = 8,
    target_performance: float = 0.6,
    warm_cache: bool = False,
) -> list[SensitivityPoint]:
    """Explore the design space at each value of one hardware parameter.

    Each point reports the minimum-energy design meeting
    ``target_performance`` (normalized against that point's own all-Beefy
    reference, so the comparison is always "given this hardware, what
    should the cluster look like?").
    """
    try:
        applier = PARAMETERS[parameter]
    except KeyError:
        raise ModelError(
            f"unknown parameter {parameter!r}; choose from {sorted(PARAMETERS)}"
        ) from None
    if not values:
        raise ModelError("no parameter values to sweep")

    points = []
    for value in values:
        if value <= 0:
            raise ModelError(f"{parameter} values must be > 0, got {value}")
        scaled_beefy, scaled_wimpy = applier(beefy, wimpy, value)
        explorer = DesignSpaceExplorer(
            scaled_beefy, scaled_wimpy, cluster_size, warm_cache=warm_cache
        )
        curve = explorer.sweep(query)
        best = curve.best_design(target_performance)
        norm = curve.normalized_point(best.label)
        points.append(
            SensitivityPoint(
                parameter=parameter,
                value=float(value),
                best_label=best.label,
                best_energy=norm.energy,
                best_performance=norm.performance,
                curve=curve,
            )
        )
    return points
