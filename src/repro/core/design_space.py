"""Cluster design-space exploration (Section 5.4-5.5).

:class:`DesignSpaceExplorer` enumerates the Beefy/Wimpy mixes of a
fixed-size cluster (the paper's ``8B,0W ... 0B,8W`` axis), evaluates each
design with the analytical model (or any caller-supplied evaluator), and
returns a :class:`TradeoffCurve` supporting the paper's analyses: EDP
comparison, knee location, and best-design selection under a performance
target.

The explorer's sweeps delegate to the :mod:`repro.search` engine: results
are memoized per explorer (re-sweeping the same query costs zero model
evaluations), and the paper's one-axis space is just the degenerate grid
of the engine's multi-dimensional search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.edp import NormalizedPoint, normalized_series
from repro.core.model import Prediction
from repro.errors import ModelError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.pstore.plans import ExecutionMode
from repro.search.cache import EvaluationCache
from repro.search.engine import DesignSpaceSearch
from repro.search.evaluators import CallableEvaluator, ModelEvaluator
from repro.search.grid import DesignCandidate
from repro.workloads.protocol import Workload, as_workload
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["DesignPoint", "TradeoffCurve", "DesignSpaceExplorer"]

Evaluator = Callable[[ClusterSpec, JoinWorkloadSpec], tuple[float, float]]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated cluster design."""

    label: str
    cluster: ClusterSpec
    time_s: float
    energy_j: float
    prediction: Prediction | None = None

    @property
    def num_beefy(self) -> int:
        return self.cluster.num_beefy

    @property
    def num_wimpy(self) -> int:
        return self.cluster.num_wimpy


class TradeoffCurve:
    """An ordered set of design points with a designated reference."""

    def __init__(self, points: Sequence[DesignPoint], reference_label: str | None = None):
        if not points:
            raise ModelError("a trade-off curve needs at least one point")
        self.points = list(points)
        labels = [p.label for p in self.points]
        if len(set(labels)) != len(labels):
            raise ModelError(f"duplicate design labels: {labels}")
        self.reference_label = reference_label or labels[0]
        if self.reference_label not in labels:
            raise ModelError(f"unknown reference {self.reference_label!r}")

    @property
    def reference(self) -> DesignPoint:
        return next(p for p in self.points if p.label == self.reference_label)

    def normalized(self) -> list[NormalizedPoint]:
        """The paper's normalized (performance, energy) series."""
        return normalized_series(
            [(p.label, p.time_s, p.energy_j) for p in self.points],
            reference_label=self.reference_label,
        )

    def point(self, label: str) -> DesignPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise ModelError(f"no design point {label!r}")

    def normalized_point(self, label: str) -> NormalizedPoint:
        for np_ in self.normalized():
            if np_.label == label:
                return np_
        raise ModelError(f"no design point {label!r}")

    # ------------------------------------------------------------- analyses
    def below_edp_points(self) -> list[NormalizedPoint]:
        """Design points that beat the constant-EDP trade-off."""
        return [p for p in self.normalized() if p.below_edp_curve]

    def best_design(self, target_performance: float) -> DesignPoint:
        """Minimum-energy design meeting a normalized performance target.

        This is the Section 6 selection rule: fix an acceptable performance
        loss (e.g. 40% -> target 0.6), then choose the least-energy design
        still meeting it.
        """
        if target_performance <= 0:
            raise ModelError(f"target performance must be > 0, got {target_performance}")
        eligible = [
            (norm, point)
            for norm, point in zip(self.normalized(), self.points)
            if norm.performance >= target_performance
        ]
        if not eligible:
            raise ModelError(
                f"no design meets performance target {target_performance:.2f}"
            )
        return min(eligible, key=lambda pair: pair[0].energy)[1]

    def knee(self) -> DesignPoint:
        """The knee of the normalized curve (max distance from the chord).

        Figure 11 discusses how the knee — where the bottleneck flips from
        source-bound to Beefy-ingest-bound — migrates with selectivity.
        """
        normalized = self.normalized()
        if len(normalized) < 3:
            return self.points[-1]
        first, last = normalized[0], normalized[-1]
        dx = last.performance - first.performance
        dy = last.energy - first.energy
        length = (dx * dx + dy * dy) ** 0.5
        if length == 0:
            return self.points[0]
        best_index, best_distance = 0, -1.0
        for index, p in enumerate(normalized):
            distance = abs(
                dx * (first.energy - p.energy) - (first.performance - p.performance) * dy
            ) / length
            if distance > best_distance:
                best_index, best_distance = index, distance
        return self.points[best_index]

    def energy_span(self) -> float:
        """Max/min energy ratio across the curve (1.0 = flat curve)."""
        energies = [p.energy for p in self.normalized()]
        low = min(energies)
        if low <= 0:
            raise ModelError("non-positive normalized energy")
        return max(energies) / low

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


class DesignSpaceExplorer:
    """Enumerates and evaluates Beefy/Wimpy mixes of a fixed-size cluster.

    ``workers > 1`` fans sweep evaluations out over the search engine's
    persistent worker pool (release it with :meth:`close` when done);
    results are identical to the serial path.
    """

    def __init__(
        self,
        beefy: NodeSpec,
        wimpy: NodeSpec,
        cluster_size: int,
        warm_cache: bool = False,
        evaluator: Evaluator | None = None,
        strict_paper_conditions: bool = False,
        workers: int = 1,
    ):
        if cluster_size <= 0:
            raise ModelError(f"cluster_size must be > 0, got {cluster_size}")
        self.beefy = beefy
        self.wimpy = wimpy
        self.cluster_size = cluster_size
        self.warm_cache = warm_cache
        self.strict_paper_conditions = strict_paper_conditions
        self.workers = workers
        self._evaluator = evaluator
        self._cache = EvaluationCache()
        self._engine: DesignSpaceSearch | None = None

    @property
    def cache(self) -> EvaluationCache:
        """The evaluation memo backing this explorer's sweeps and any
        :class:`~repro.study.Study` built over it."""
        return self._cache

    def mixes(self) -> list[ClusterSpec]:
        """All designs from all-Beefy to all-Wimpy (paper's ``xB,yW`` axis)."""
        designs = []
        for num_beefy in range(self.cluster_size, -1, -1):
            num_wimpy = self.cluster_size - num_beefy
            designs.append(
                ClusterSpec.beefy_wimpy(self.beefy, num_beefy, self.wimpy, num_wimpy)
            )
        return designs

    def mix_candidates(
        self, mode: ExecutionMode | None = None
    ) -> list[DesignCandidate]:
        """The mix axis as search candidates (shared by sweeps and studies)."""
        return [
            DesignCandidate(
                label=f"{num_beefy}B,{self.cluster_size - num_beefy}W",
                beefy=self.beefy,
                wimpy=self.wimpy,
                num_beefy=num_beefy,
                num_wimpy=self.cluster_size - num_beefy,
                mode=mode,
            )
            for num_beefy in range(self.cluster_size, -1, -1)
        ]

    def evaluate(
        self,
        cluster: ClusterSpec,
        workload: Workload | JoinWorkloadSpec,
        mode: ExecutionMode | None = None,
    ) -> DesignPoint:
        """Evaluate one design (analytical model unless a custom evaluator
        was supplied).

        The single-point path runs through the same evaluator and
        evaluation cache as :meth:`sweep`, so one-off evaluations warm the
        sweep memo (and vice versa).  Candidate parameters come from the
        explorer's node types directly — all-Wimpy designs keep the Beefy
        disk/NIC bandwidths (the paper's Section 5.4 uniformity
        assumption) — exactly as the sweeps build them.

        Exception: a custom evaluator is a function of the *actual*
        cluster object, so when the caller's cluster is not one the
        explorer's specs can rebuild (foreign node types), it is priced
        directly and never cached — a foreign cluster must not collide
        with same-shaped sweep entries.
        """
        candidate = DesignCandidate(
            label=cluster.name,
            beefy=self.beefy,
            wimpy=self.wimpy,
            num_beefy=cluster.num_beefy,
            num_wimpy=cluster.num_wimpy,
            mode=mode,
        )
        if self._evaluator is not None and candidate.cluster() != cluster:
            total_time = 0.0
            total_energy = 0.0
            for query, weight in as_workload(workload).weighted_queries():
                time_s, energy_j = self._evaluator(cluster, query)
                total_time += weight * time_s
                total_energy += weight * energy_j
            return DesignPoint(
                label=cluster.name,
                cluster=cluster,
                time_s=total_time,
                energy_j=total_energy,
            )
        result = self._search_engine().search([candidate], workload)
        evaluated = result.points[0]
        if not evaluated.feasible:
            raise ModelError(evaluated.infeasible_reason)
        return DesignPoint(
            label=cluster.name,
            cluster=cluster,
            time_s=evaluated.time_s,
            energy_j=evaluated.energy_j,
            prediction=evaluated.prediction,
        )

    def sweep_sizes(
        self,
        workload: Workload | JoinWorkloadSpec,
        sizes: Sequence[int],
        mode: ExecutionMode | None = None,
    ) -> TradeoffCurve:
        """Homogeneous all-Beefy size sweep (largest size is the reference).

        This is the other axis of the paper's design space: Figures 1a/3/4
        vary homogeneous cluster size, Figure 12(c) compares this sweep
        against the Beefy/Wimpy mixes at fixed size.
        """
        if not sizes:
            raise ModelError("no cluster sizes given")
        candidates = [
            DesignCandidate(
                label=f"{size}B",
                beefy=self.beefy,
                wimpy=self.wimpy,
                num_beefy=size,
                num_wimpy=0,
                mode=mode,
                homogeneous=True,
            )
            for size in sorted(set(sizes), reverse=True)
        ]
        points = self._run_search(candidates, workload)
        if not points:
            raise ModelError(f"no feasible size for {as_workload(workload).name}")
        return TradeoffCurve(points, reference_label=points[0].label)

    def sweep(
        self,
        workload: Workload | JoinWorkloadSpec,
        mode: ExecutionMode | None = None,
        reference_label: str | None = None,
    ) -> TradeoffCurve:
        """Evaluate every feasible mix; infeasible designs are skipped.

        ``workload`` is anything satisfying the
        :class:`~repro.workloads.protocol.Workload` protocol; a suite's
        cost at each design is the weight-summed cost of its queries.
        Infeasibility mirrors the paper ("we do not use fewer than 2 Beefy
        nodes because 1 Beefy node cannot build the entire hash table"):
        designs that cannot run the whole workload are dropped from the
        curve.
        """
        points = self._run_search(self.mix_candidates(mode), workload)
        if not points:
            raise ModelError(f"no feasible design for {as_workload(workload).name}")
        return TradeoffCurve(points, reference_label=reference_label)

    # ------------------------------------------------------------- delegation
    def search_evaluator(self) -> "CallableEvaluator | ModelEvaluator":
        """This explorer's configuration as a search-engine evaluator
        (shared by sweeps and studies)."""
        if self._evaluator is not None:
            return CallableEvaluator(self._evaluator)
        return ModelEvaluator(
            warm_cache=self.warm_cache,
            strict_paper_conditions=self.strict_paper_conditions,
        )

    def _search_engine(self) -> DesignSpaceSearch:
        """The :mod:`repro.search` engine backing this explorer's sweeps.

        Created once per explorer: sweeps, size sweeps, and single-point
        evaluations all share one engine, so its per-entry memo and (for
        ``workers > 1``) its persistent worker pool carry across calls.
        """
        if self._engine is None:
            self._engine = DesignSpaceSearch(
                evaluator=self.search_evaluator(),
                workers=self.workers,
                cache=self._cache,
            )
        return self._engine

    def close(self) -> None:
        """Release the engine's persistent worker pool (if any)."""
        if self._engine is not None:
            self._engine.close()

    def _run_search(
        self, candidates: Sequence[DesignCandidate], workload: Workload | JoinWorkloadSpec
    ) -> list[DesignPoint]:
        """Search the candidates and keep the feasible points, grid order."""
        result = self._search_engine().search(candidates, workload)
        return [
            DesignPoint(
                label=evaluated.label,
                cluster=evaluated.candidate.cluster(),
                time_s=evaluated.time_s,
                energy_j=evaluated.energy_j,
                prediction=evaluated.prediction,
            )
            for evaluated in result.feasible_points
        ]
