"""The Section 5.3 analytical model of P-store performance and energy.

The model predicts response time and cluster energy for a parallel hash
join, phase by phase.  Symbols follow Table 3 of the paper:

=========  ==================================================================
``Bld``    build table size (MB), ``Sbld`` its predicate selectivity
``Prb``    probe table size (MB), ``Sprb`` its predicate selectivity
``NB/NW``  number of Beefy / Wimpy nodes
``MB/MW``  per-node memory (MB) usable for hash tables
``I``      disk bandwidth (MB/s); ``L`` network bandwidth (MB/s)
``CB/CW``  maximum CPU bandwidth (MB/s)
``GB/GW``  P-store's inherent CPU-utilization constants
``fB/fW``  node power models (watts as a function of CPU utilization)
``H``      true iff Wimpy nodes can hold their hash-table share:
           ``MW >= (Bld * Sbld) / (NB + NW)``
=========  ==================================================================

**Homogeneous execution** (``H`` true) is transcribed verbatim from the
paper.  For each phase (build, then probe), with ``S`` the phase's
selectivity and ``N = NB + NW``::

    R  = I*S                 if I*S < L        (disk bound)
         N*L/(N-1)           otherwise         (network bound)
    U  = I                   if I*S < L
         (N*L/(N-1)) / S     otherwise

    T  = Volume*S / (NB*R + NW*R)
    E  = T * ( NB*fB(GB + U/CB) + NW*fW(GW + U/CW) )

**Heterogeneous execution** (``H`` false) is only described qualitatively
in the paper ("in the interest of space, we omit this model"); we derive it
from Section 5.4's account: Wimpy nodes scan/filter and forward all
qualifying tuples; Beefy nodes additionally ingest and build/probe, and
their *inbound* NIC saturates first.  Per phase with qualifying volume
``Q = Volume*S``::

    supply  = sum over nodes of min(scan_limit * S, L)      (qualifying MB/s)
    ingest  = NB * L * N/(N-1)       (each Beefy's hash share arrives
                                      (N-1)/N over its inbound NIC)
    T       = Q / min(supply, ingest)

with source CPU rates scaled down proportionally when ingest-bound — this
produces the knee behaviour of Figure 11 (knee where supply == ingest).

**Cache regimes**: cold scans are bound by ``I``; warm scans by the node's
CPU bandwidth (the paper's Section 5.3.1 validation setting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.hardware.power import PowerLawModel, PowerModel
from repro.pstore.plans import ExecutionMode
from repro.units import clamp
from repro.workloads.queries import JoinMethod, JoinWorkloadSpec

__all__ = [
    "ModelConstants",
    "ModelParameters",
    "HashJoinQuery",
    "PhasePrediction",
    "Prediction",
    "PStoreModel",
]


class HashJoinQuery(JoinWorkloadSpec):
    """A hash-join workload with paper-specific factories.

    Identical to :class:`~repro.workloads.queries.JoinWorkloadSpec`; exists
    so model users have a descriptive entry point.
    """

    @classmethod
    def tpch_orders_lineitem(
        cls,
        scale_factor: float,
        build_selectivity: float,
        probe_selectivity: float,
        method: JoinMethod = JoinMethod.SHUFFLE,
    ) -> "HashJoinQuery":
        """ORDERS (build) x LINEITEM (probe) at the paper's 20 B projections."""
        from repro.workloads import tpch

        return cls(
            name=f"orders-lineitem-sf{scale_factor:g}",
            build_volume_mb=tpch.projected_size_mb(tpch.ORDERS, scale_factor),
            probe_volume_mb=tpch.projected_size_mb(tpch.LINEITEM, scale_factor),
            build_selectivity=build_selectivity,
            probe_selectivity=probe_selectivity,
            method=method,
        )


@dataclass(frozen=True)
class ModelConstants:
    """Table 3's published constants, for reference and the tbl3 check."""

    CB: float = 5037.0  # max CPU bandwidth of a Beefy node (MB/s)
    CW: float = 1129.0  # max CPU bandwidth of a Wimpy node (MB/s)
    GB: float = 0.25  # Beefy CPU utilization constant of P-store
    GW: float = 0.13  # Wimpy CPU utilization constant of P-store
    beefy_power_coefficient: float = 130.03
    beefy_power_exponent: float = 0.2369
    wimpy_power_coefficient: float = 10.994
    wimpy_power_exponent: float = 0.2875

    def beefy_power_model(self) -> PowerLawModel:
        return PowerLawModel(self.beefy_power_coefficient, self.beefy_power_exponent)

    def wimpy_power_model(self) -> PowerLawModel:
        return PowerLawModel(self.wimpy_power_coefficient, self.wimpy_power_exponent)


TABLE3 = ModelConstants()


@dataclass(frozen=True)
class ModelParameters:
    """Hardware inputs of the model (one Beefy type + one Wimpy type).

    The paper assumes uniform disk (``I``) and network (``L``) bandwidths
    across node types and notes "we can easily extend our model to account
    for separate Wimpy and Beefy I/O bandwidths" — the optional
    ``wimpy_disk_mbps`` / ``wimpy_network_mbps`` fields are that extension
    (``None`` keeps the paper's uniformity assumption).
    """

    num_beefy: int
    num_wimpy: int
    beefy_memory_mb: float
    wimpy_memory_mb: float
    disk_mbps: float  # I — Beefy (and, by default, Wimpy) disk bandwidth
    network_mbps: float  # L — Beefy (and, by default, Wimpy) NIC bandwidth
    beefy_cpu_mbps: float
    wimpy_cpu_mbps: float
    beefy_base_util: float
    wimpy_base_util: float
    beefy_power: PowerModel
    wimpy_power: PowerModel
    wimpy_disk_mbps: float | None = None
    wimpy_network_mbps: float | None = None

    def __post_init__(self) -> None:
        if self.num_beefy < 0 or self.num_wimpy < 0:
            raise ModelError("node counts must be >= 0")
        if self.num_beefy + self.num_wimpy == 0:
            raise ModelError("the cluster must have at least one node")
        for attr in ("disk_mbps", "network_mbps", "beefy_cpu_mbps", "wimpy_cpu_mbps"):
            if getattr(self, attr) <= 0:
                raise ModelError(f"{attr} must be > 0")
        for attr in ("wimpy_disk_mbps", "wimpy_network_mbps"):
            value = getattr(self, attr)
            if value is not None and value <= 0:
                raise ModelError(f"{attr} must be > 0 when set")

    @property
    def num_nodes(self) -> int:
        return self.num_beefy + self.num_wimpy

    @property
    def effective_wimpy_disk_mbps(self) -> float:
        """Wimpy disk bandwidth (Beefy's under the uniformity assumption)."""
        return self.wimpy_disk_mbps if self.wimpy_disk_mbps is not None else self.disk_mbps

    @property
    def effective_wimpy_network_mbps(self) -> float:
        """Wimpy NIC bandwidth (Beefy's under the uniformity assumption)."""
        return (
            self.wimpy_network_mbps
            if self.wimpy_network_mbps is not None
            else self.network_mbps
        )

    @classmethod
    def from_specs(
        cls,
        beefy: NodeSpec,
        num_beefy: int,
        wimpy: NodeSpec | None = None,
        num_wimpy: int = 0,
    ) -> "ModelParameters":
        """Build parameters from node specs.

        Disk and network bandwidths are taken from the Beefy spec (even for
        all-Wimpy designs), reflecting the paper's uniformity assumption
        ("the disk configuration for both the Wimpy and the Beefy nodes are
        the same", and Section 5.4 models identical IO/network for both).
        """
        reference = beefy
        wimpy = wimpy or reference
        return cls(
            num_beefy=num_beefy,
            num_wimpy=num_wimpy,
            beefy_memory_mb=beefy.memory_mb,
            wimpy_memory_mb=wimpy.memory_mb,
            disk_mbps=reference.disk_bandwidth_mbps,
            network_mbps=reference.nic_bandwidth_mbps,
            beefy_cpu_mbps=beefy.cpu_bandwidth_mbps,
            wimpy_cpu_mbps=wimpy.cpu_bandwidth_mbps,
            beefy_base_util=beefy.engine_base_utilization,
            wimpy_base_util=wimpy.engine_base_utilization,
            beefy_power=beefy.power_model,
            wimpy_power=wimpy.power_model,
        )

    @classmethod
    def from_cluster(cls, cluster: ClusterSpec) -> "ModelParameters":
        num_beefy = cluster.num_beefy
        num_wimpy = cluster.num_wimpy
        beefy = cluster.beefy_spec if num_beefy else cluster.wimpy_spec
        wimpy = cluster.wimpy_spec if num_wimpy else beefy
        return cls.from_specs(beefy, num_beefy, wimpy, num_wimpy)


@dataclass(frozen=True)
class PhasePrediction:
    """Model output for one join phase."""

    name: str
    time_s: float
    energy_j: float
    beefy_utilization: float
    wimpy_utilization: float
    bottleneck: str  # 'disk' | 'cpu' | 'network' | 'ingest'

    @property
    def average_power_w(self) -> float:
        if self.time_s <= 0:
            return 0.0
        return self.energy_j / self.time_s


@dataclass(frozen=True)
class Prediction:
    """Model output for a whole join: build + probe."""

    query: JoinWorkloadSpec
    mode: ExecutionMode
    build: PhasePrediction
    probe: PhasePrediction

    @property
    def time_s(self) -> float:
        return self.build.time_s + self.probe.time_s

    @property
    def energy_j(self) -> float:
        return self.build.energy_j + self.probe.energy_j

    @property
    def performance(self) -> float:
        """The paper's performance metric: inverse response time."""
        if self.time_s <= 0:
            raise ModelError("zero-duration prediction has no performance")
        return 1.0 / self.time_s

    @property
    def average_power_w(self) -> float:
        if self.time_s <= 0:
            return 0.0
        return self.energy_j / self.time_s

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy_j * self.time_s


class PStoreModel:
    """Analytical performance/energy model (Section 5.3).

    ``pipeline_cpu_cost`` mirrors the simulated executor's parameter: CPU
    bandwidth consumed per scanned MB.  1.0 reproduces the paper's printed
    equations (``U`` equals the scan rate and utilization is ``G + U/C``);
    the Figure 7/8/9 experiments use the calibrated value so model and
    simulator describe the same engine.
    """

    def __init__(
        self,
        params: ModelParameters,
        warm_cache: bool = False,
        pipeline_cpu_cost: float = 1.0,
        strict_paper_conditions: bool = False,
    ):
        if pipeline_cpu_cost <= 0:
            raise ModelError(f"pipeline_cpu_cost must be > 0, got {pipeline_cpu_cost}")
        self.params = params
        self.warm_cache = warm_cache
        self.pipeline_cpu_cost = pipeline_cpu_cost
        #: use the paper's printed branch condition ``I*S < L`` verbatim.
        #: The default compares against the effective network-bound rate
        #: ``n*L/(n-1)`` instead, which matches the fluid simulator exactly;
        #: the printed form declares small clusters network-bound slightly
        #: too eagerly (visible only for n <= 7 at the Section 5.4
        #: parameters).  Figure 12's homogeneous size sweeps use the strict
        #: form, reproducing the paper's own curves.
        self.strict_paper_conditions = strict_paper_conditions

    # ------------------------------------------------------------------ public
    def hash_table_fits_everywhere(self, query: JoinWorkloadSpec) -> bool:
        """Table 3's ``H``: can the smallest node hold its hash-table share?"""
        params = self.params
        share = query.qualifying_build_mb / params.num_nodes
        smallest = (
            min(params.wimpy_memory_mb, params.beefy_memory_mb)
            if params.num_wimpy and params.num_beefy
            else (params.wimpy_memory_mb if params.num_wimpy else params.beefy_memory_mb)
        )
        return smallest >= share

    def resolve_mode(
        self, query: JoinWorkloadSpec, mode: ExecutionMode | None = None
    ) -> ExecutionMode:
        """Pick (or validate) the execution mode for a query."""
        params = self.params
        if mode is ExecutionMode.HOMOGENEOUS or (
            mode is None and self.hash_table_fits_everywhere(query)
        ):
            if mode is ExecutionMode.HOMOGENEOUS and not self.hash_table_fits_everywhere(
                query
            ):
                raise ModelError(
                    f"{query.name}: homogeneous execution forced but the hash "
                    "table does not fit on every node"
                )
            return ExecutionMode.HOMOGENEOUS
        # Heterogeneous: only the NB beefy nodes build hash tables.
        if params.num_beefy == 0:
            raise ModelError(
                f"{query.name}: hash table does not fit on the all-Wimpy cluster "
                "and P-store has no 2-pass join"
            )
        beefy_share = query.qualifying_build_mb / params.num_beefy
        if beefy_share > params.beefy_memory_mb:
            raise ModelError(
                f"{query.name}: heterogeneous execution needs {beefy_share:.0f} MB "
                f"per Beefy node; only {params.beefy_memory_mb:.0f} MB available"
            )
        return ExecutionMode.HETEROGENEOUS

    def predict(
        self, query: JoinWorkloadSpec, mode: ExecutionMode | None = None
    ) -> Prediction:
        """Predict response time and energy for the dual-shuffle join.

        ``mode`` forces homogeneous/heterogeneous execution (used by the
        validation experiments that mirror the paper's stated plans);
        ``None`` applies the ``H`` rule.
        """
        resolved = self.resolve_mode(query, mode)
        if resolved is ExecutionMode.HOMOGENEOUS:
            build = self._homogeneous_phase(
                "build", query.build_volume_mb, query.build_selectivity
            )
            probe = self._homogeneous_phase(
                "probe", query.probe_volume_mb, query.probe_selectivity
            )
        else:
            build = self._heterogeneous_phase(
                "build", query.build_volume_mb, query.build_selectivity
            )
            probe = self._heterogeneous_phase(
                "probe", query.probe_volume_mb, query.probe_selectivity
            )
        return Prediction(query=query, mode=resolved, build=build, probe=probe)

    def predict_broadcast(self, query: JoinWorkloadSpec) -> Prediction:
        """Analytic prediction for the broadcast join (Section 4.3.2).

        Build phase: every node must *receive* ``(N-1)/N`` of the
        qualifying build table over its inbound NIC — the algorithmic
        bottleneck ("broadcast generally takes the same time to complete
        regardless of the number of participating nodes").  Probe phase:
        purely local scanning against the replicated hash table.

        Requires homogeneous feasibility: each node holds the full
        qualifying build table.
        """
        params = self.params
        n = params.num_nodes
        smallest_memory = (
            min(params.wimpy_memory_mb, params.beefy_memory_mb)
            if params.num_wimpy and params.num_beefy
            else (params.wimpy_memory_mb if params.num_wimpy else params.beefy_memory_mb)
        )
        if query.qualifying_build_mb > smallest_memory:
            raise ModelError(
                f"{query.name}: broadcast needs {query.qualifying_build_mb:.0f} MB "
                f"on every node; smallest node has {smallest_memory:.0f} MB"
            )
        scan_b, scan_w = self._scan_limits()

        # Build: per-node ingest of (N-1)/N of the qualifying table over L,
        # or the sources' filtered supply if that is slower.
        qualifying = query.qualifying_build_mb
        if n > 1:
            ingest_time = qualifying * (n - 1) / n / params.network_mbps
        else:
            ingest_time = 0.0
        per_node = query.build_volume_mb / n
        supply_time_b = per_node / scan_b if params.num_beefy else 0.0
        supply_time_w = per_node / scan_w if params.num_wimpy else 0.0
        build_time = max(ingest_time, supply_time_b, supply_time_w)
        build_util_b = self._beefy_utilization(
            min(scan_b, per_node / build_time if build_time else scan_b)
        )
        build_util_w = self._wimpy_utilization(
            min(scan_w, per_node / build_time if build_time else scan_w)
        )
        build = PhasePrediction(
            name="build",
            time_s=build_time,
            energy_j=self._energy_with_idle_tails(
                build_time,
                build_time if params.num_beefy else 0.0,
                build_time if params.num_wimpy else 0.0,
                build_util_b,
                build_util_w,
            ),
            beefy_utilization=build_util_b if params.num_beefy else 0.0,
            wimpy_utilization=build_util_w if params.num_wimpy else 0.0,
            bottleneck="ingest" if build_time == ingest_time else (
                "cpu" if self.warm_cache else "disk"
            ),
        )

        # Probe: local scan of each node's partition, barrier on the slower
        # type; no network at all.
        probe_per_node = query.probe_volume_mb / n
        time_b = probe_per_node / scan_b if params.num_beefy else 0.0
        time_w = probe_per_node / scan_w if params.num_wimpy else 0.0
        probe_time = max(time_b, time_w)
        probe = PhasePrediction(
            name="probe",
            time_s=probe_time,
            energy_j=self._energy_with_idle_tails(
                probe_time,
                time_b,
                time_w,
                self._beefy_utilization(scan_b),
                self._wimpy_utilization(scan_w),
            ),
            beefy_utilization=self._beefy_utilization(scan_b) if params.num_beefy else 0.0,
            wimpy_utilization=self._wimpy_utilization(scan_w) if params.num_wimpy else 0.0,
            bottleneck="cpu" if self.warm_cache else "disk",
        )
        return Prediction(
            query=query, mode=ExecutionMode.HOMOGENEOUS, build=build, probe=probe
        )

    # ----------------------------------------------------------------- phases
    def _scan_limits(self) -> tuple[float, float]:
        """Pre-filter scan rate ceilings (beefy, wimpy) for the cache regime."""
        params = self.params
        cost = self.pipeline_cpu_cost
        if self.warm_cache:
            return params.beefy_cpu_mbps / cost, params.wimpy_cpu_mbps / cost
        # Cold scans are disk-bound unless the engine pipeline cannot keep up.
        return (
            min(params.disk_mbps, params.beefy_cpu_mbps / cost),
            min(params.effective_wimpy_disk_mbps, params.wimpy_cpu_mbps / cost),
        )

    def _homogeneous_phase(
        self, name: str, volume_mb: float, selectivity: float
    ) -> PhasePrediction:
        """The paper's homogeneous equations, one node-type pair at a time."""
        params = self.params
        n = params.num_nodes
        network_rate = (
            params.network_mbps if n == 1 else n * params.network_mbps / (n - 1)
        )
        scan_b, scan_w = self._scan_limits()

        def rates(scan_limit: float, nic_mbps: float) -> tuple[float, float, str]:
            scan_rate = scan_limit * selectivity
            type_network_rate = (
                network_rate * nic_mbps / params.network_mbps
            )  # per-type NIC extension; == network_rate when uniform
            if self.strict_paper_conditions:
                # Verbatim Table 3 branch: disk bound iff I*S < L.
                scan_bound = n == 1 or scan_rate < nic_mbps
            else:
                # Compare against the effective network-bound rate
                # n*L/(n-1): identical for the paper's 8-node settings but
                # consistent with the fluid simulator at small n.
                scan_bound = n == 1 or scan_rate <= type_network_rate
            if scan_bound:
                bottleneck = "disk" if not self.warm_cache else "cpu"
                return scan_rate, scan_limit, bottleneck
            return type_network_rate, type_network_rate / selectivity, "network"

        rate_b, util_rate_b, bneck_b = rates(scan_b, params.network_mbps)
        rate_w, util_rate_w, bneck_w = rates(
            scan_w, params.effective_wimpy_network_mbps
        )

        # Per-node completion times; the phase barrier makes the slower node
        # type gate the phase.  When RB == RW (always true in the paper's
        # disk-/network-bound settings) this equals the printed
        # ``Volume*S / (NB*R + NW*R)``.
        per_node_qualifying = volume_mb * selectivity / n
        time_b = per_node_qualifying / rate_b if params.num_beefy else 0.0
        time_w = per_node_qualifying / rate_w if params.num_wimpy else 0.0
        time_s = max(time_b, time_w)

        beefy_util = self._beefy_utilization(util_rate_b)
        wimpy_util = self._wimpy_utilization(util_rate_w)
        energy = self._energy_with_idle_tails(time_s, time_b, time_w, beefy_util, wimpy_util)
        bottleneck = bneck_b if time_b >= time_w else bneck_w
        return PhasePrediction(
            name=name,
            time_s=time_s,
            energy_j=energy,
            beefy_utilization=beefy_util if params.num_beefy else 0.0,
            wimpy_utilization=wimpy_util if params.num_wimpy else 0.0,
            bottleneck=bottleneck,
        )

    def _heterogeneous_phase(
        self, name: str, volume_mb: float, selectivity: float
    ) -> PhasePrediction:
        """Derived ingestion-bound model (see module docstring)."""
        params = self.params
        n = params.num_nodes
        nb = params.num_beefy
        scan_b, scan_w = self._scan_limits()

        # Qualifying-tuple supply per source node (outbound NIC can also cap).
        supply_b = min(scan_b * selectivity, params.network_mbps)
        supply_w = min(scan_w * selectivity, params.effective_wimpy_network_mbps)
        supply = nb * supply_b + params.num_wimpy * supply_w

        # Beefy inbound NICs: each Beefy's share arrives (n-1)/n over the wire.
        ingest_capacity = (
            nb * params.network_mbps * (n / (n - 1)) if n > 1 else float("inf")
        )

        qualifying_mb = volume_mb * selectivity

        # Three candidate limits gate the phase:
        #  * the Beefy inbound NICs draining the whole qualifying volume,
        #  * each Beefy source draining its own partition,
        #  * each Wimpy source draining its own partition (barrier).
        ingest_time = qualifying_mb / ingest_capacity
        per_node_qualifying = qualifying_mb / n
        time_b = per_node_qualifying / supply_b if nb else 0.0
        time_w = per_node_qualifying / supply_w if params.num_wimpy else 0.0
        time_s = max(ingest_time, time_b, time_w)
        if time_s == ingest_time:
            bottleneck = "ingest"
        elif supply_b >= params.network_mbps and time_b >= time_w:
            bottleneck = "network"
        else:
            bottleneck = "cpu" if self.warm_cache else "disk"

        # Source-side CPU rates, diluted by how long each type's scan work
        # is spread over the phase (slow peers or ingest limits stall it).
        throttle_b = time_b / time_s if time_s > 0 else 0.0
        throttle_w = time_w / time_s if time_s > 0 else 0.0
        util_rate_b = min(scan_b, supply_b / selectivity) * throttle_b
        util_rate_w = min(scan_w, supply_w / selectivity) * throttle_w
        beefy_util = self._beefy_utilization(util_rate_b)
        wimpy_util = self._wimpy_utilization(util_rate_w)
        # Sources stay active for the whole phase at their diluted rates.
        energy = self._energy_with_idle_tails(
            time_s, time_s if nb else 0.0, time_s if params.num_wimpy else 0.0,
            beefy_util, wimpy_util,
        )
        return PhasePrediction(
            name=name,
            time_s=time_s,
            energy_j=energy,
            beefy_utilization=beefy_util,
            wimpy_utilization=wimpy_util if params.num_wimpy else 0.0,
            bottleneck=bottleneck,
        )

    # ------------------------------------------------------------- utilities
    def _beefy_utilization(self, prefilter_rate_mbps: float) -> float:
        params = self.params
        return clamp(
            params.beefy_base_util
            + self.pipeline_cpu_cost * prefilter_rate_mbps / params.beefy_cpu_mbps,
            0.0,
            1.0,
        )

    def _wimpy_utilization(self, prefilter_rate_mbps: float) -> float:
        params = self.params
        return clamp(
            params.wimpy_base_util
            + self.pipeline_cpu_cost * prefilter_rate_mbps / params.wimpy_cpu_mbps,
            0.0,
            1.0,
        )

    def _energy_with_idle_tails(
        self,
        time_s: float,
        time_b: float,
        time_w: float,
        beefy_util: float,
        wimpy_util: float,
    ) -> float:
        """Cluster energy for one phase.

        Each node type is busy for its own completion time and idles at its
        engine-base utilization until the barrier releases.  When both types
        finish together this reduces to the paper's
        ``T * (NB*fB(...) + NW*fW(...))``.
        """
        params = self.params
        energy = 0.0
        if params.num_beefy:
            idle_power = params.beefy_power.power(max(params.beefy_base_util, 0.01))
            energy += params.num_beefy * (
                params.beefy_power.power(beefy_util) * time_b
                + idle_power * (time_s - time_b)
            )
        if params.num_wimpy:
            idle_power = params.wimpy_power.power(max(params.wimpy_base_util, 0.01))
            energy += params.num_wimpy * (
                params.wimpy_power.power(wimpy_util) * time_w
                + idle_power * (time_s - time_w)
            )
        return energy
