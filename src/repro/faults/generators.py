"""Seeded scenario generators — the nemesis playbook.

Three canonical degraded-mode scenarios, in the spirit of the ydb
nemesis stress tooling the ROADMAP names: i.i.d. random node crashes
(the base-rate reality a large wimpy cluster lives in), a staggered
rolling restart (planned maintenance), and a correlated rack failure
(one failure domain going dark at once).  Every generator is a pure
function of its arguments — the same seed always yields the identical
:class:`~repro.faults.schedule.FaultSchedule`, so scenario evaluations
are cacheable and campaigns reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.errors import ConfigurationError
from repro.faults.schedule import FaultSchedule, NodeCrash

__all__ = ["correlated_rack_failure", "random_crashes", "rolling_restart"]


def random_crashes(
    num_nodes: int,
    horizon_s: float,
    count: int,
    mttr_s: float,
    seed: int = 0,
    name: str = "",
) -> FaultSchedule:
    """``count`` independent crash-and-recover events over ``horizon_s``.

    Each event picks a uniform node and a uniform onset in
    ``[0, horizon_s)``; time-to-recover is ``mttr_s`` stretched uniformly
    in ``[0.5, 1.5]`` (a fixed MTTR with spread, not an exponential tail,
    so short scenarios stay representative).  Deterministic per
    ``seed``.
    """
    if num_nodes <= 0:
        raise ConfigurationError(f"num_nodes must be > 0, got {num_nodes}")
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if not (math.isfinite(horizon_s) and horizon_s > 0):
        raise ConfigurationError(f"horizon_s must be > 0, got {horizon_s}")
    if not (math.isfinite(mttr_s) and mttr_s > 0):
        raise ConfigurationError(f"mttr_s must be > 0, got {mttr_s}")
    rng = random.Random(seed)
    events = []
    for _ in range(count):
        at_s = rng.uniform(0.0, horizon_s)
        events.append(
            NodeCrash(
                node=rng.randrange(num_nodes),
                at_s=at_s,
                recover_at_s=at_s + mttr_s * rng.uniform(0.5, 1.5),
            )
        )
    return FaultSchedule(
        events=tuple(events),
        name=name or f"random-crashes-{count}x-seed{seed}",
    )


def rolling_restart(
    num_nodes: int,
    downtime_s: float,
    stagger_s: float,
    start_s: float = 0.0,
    name: str = "",
) -> FaultSchedule:
    """Restart every node in turn: node ``i`` goes down at
    ``start_s + i * stagger_s`` for ``downtime_s``.

    The planned-maintenance scenario: with ``stagger_s > downtime_s`` at
    most one node is ever down, so a replicated layout should stay
    covered throughout.  Fully deterministic — no seed.
    """
    if num_nodes <= 0:
        raise ConfigurationError(f"num_nodes must be > 0, got {num_nodes}")
    if not (math.isfinite(downtime_s) and downtime_s > 0):
        raise ConfigurationError(f"downtime_s must be > 0, got {downtime_s}")
    if not (math.isfinite(stagger_s) and stagger_s > 0):
        raise ConfigurationError(f"stagger_s must be > 0, got {stagger_s}")
    if start_s < 0:
        raise ConfigurationError(f"start_s must be >= 0, got {start_s}")
    events = tuple(
        NodeCrash(
            node=node,
            at_s=start_s + node * stagger_s,
            recover_at_s=start_s + node * stagger_s + downtime_s,
        )
        for node in range(num_nodes)
    )
    return FaultSchedule(events=events, name=name or f"rolling-restart-{num_nodes}")


def correlated_rack_failure(
    nodes: Sequence[int],
    at_s: float,
    downtime_s: float = math.inf,
    name: str = "",
) -> FaultSchedule:
    """One failure domain dies at once: every node in ``nodes`` crashes
    at ``at_s`` and recovers ``downtime_s`` later (``inf`` = never — the
    rack stays dark and the trace must survive on replicas or die).

    The scenario chained declustering is weakest against: consecutive
    node indices share replica chains, so a rack of neighbours can take
    every copy of a partition with it.
    """
    nodes = tuple(nodes)
    if not nodes:
        raise ConfigurationError("a rack failure needs at least one node")
    if len(set(nodes)) != len(nodes):
        raise ConfigurationError(f"duplicate nodes in rack: {nodes}")
    if not (math.isfinite(at_s) and at_s >= 0):
        raise ConfigurationError(f"at_s must be >= 0, got {at_s}")
    if not downtime_s > 0:
        raise ConfigurationError(f"downtime_s must be > 0, got {downtime_s}")
    events = tuple(
        NodeCrash(node=node, at_s=at_s, recover_at_s=at_s + downtime_s)
        for node in nodes
    )
    return FaultSchedule(
        events=events, name=name or f"rack-failure-{len(nodes)}@{at_s:g}s"
    )
