"""Typed, seeded fault events and the schedule that injects them.

The beefy-vs-wimpy frontier of the paper assumes every node stays
healthy for the whole trace — exactly where its conclusion is weakest: a
wimpy cluster has *more* nodes, so at equal per-node reliability it sees
more failures, and losing one of many small nodes mid-trace costs
rebalancing, retries, and SLA misses that a six-node beefy cluster never
pays.  This module supplies the vocabulary for injecting that reality:

* :class:`NodeCrash` — a node fail-stops at ``at_s`` and (optionally)
  reboots at ``recover_at_s``.  In the simulator a crash is a *forced
  gated transition with zero notice*: the node drops to standby residual
  power instantly, every in-flight job that owns it is killed, and the
  reboot is priced as a real waking transition
  (:class:`~repro.hardware.powerstate.PowerStateModel`).
* :class:`Straggler` — a node runs at a fraction of its speed for a
  window (thermal throttling, a sick disk, a noisy neighbour).  Applied
  through the same DVFS factor-scaling the control policies use, so a
  straggling node is slower *and* cheaper exactly as a down-clocked one
  would be.
* :class:`NetworkDegrade` — the interconnect loses a fraction of its
  capacity for a window (a flapping uplink, cross-traffic).  Scales the
  network resource capacities in max-min fair allocation, composing with
  the switch contention model.

A :class:`FaultSchedule` is an ordered, deterministic bag of such events
with a stable :meth:`~FaultSchedule.cache_key`, so evaluations under a
scenario are memoized separately from healthy ones.  Node indices are
interpreted *modulo the cluster size* at injection time (ring semantics,
matching chained declustering), so one scenario spans a whole campaign
of heterogeneous cluster sizes: "crash node 3 at noon" means something
on the 6-node design and the 16-node design alike.

:class:`FailurePolicy` decides what happens to the jobs a crash kills:
``abort_and_retry`` re-queues them with capped exponential backoff
(deterministically jittered, so reruns are bit-reproducible), ``drop``
sheds them — an SLA miss the degraded selectors can refuse to forgive.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hardware.powerstate import TRADITIONAL_SERVER, PowerStateModel

__all__ = [
    "FaultSchedule",
    "FailurePolicy",
    "NetworkDegrade",
    "NodeCrash",
    "Straggler",
]


def _finite(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value}")
    return value


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` fail-stops at ``at_s``; reboots at ``recover_at_s``.

    ``recover_at_s`` defaults to ``inf``: a fail-stop crash the trace
    must survive without that node ever returning.
    """

    node: int
    at_s: float
    recover_at_s: float = math.inf

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(f"crash node must be >= 0, got {self.node}")
        if _finite("crash at_s", self.at_s) < 0:
            raise ConfigurationError(f"crash at_s must be >= 0, got {self.at_s}")
        if not self.recover_at_s > self.at_s:
            raise ConfigurationError(
                f"recover_at_s ({self.recover_at_s}) must be after "
                f"at_s ({self.at_s})"
            )

    def cache_key(self) -> tuple:
        return ("crash", self.node, self.at_s, self.recover_at_s)


@dataclass(frozen=True)
class Straggler:
    """Node ``node`` runs at ``slowdown`` x its speed for ``duration_s``.

    ``slowdown`` is the effective frequency multiplier in (0, 1): 0.25
    means the node delivers a quarter of its CPU bandwidth (and draws the
    matching down-clocked power) for the window.  Overlapping stragglers
    on one node compose multiplicatively.
    """

    node: int
    at_s: float
    slowdown: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(f"straggler node must be >= 0, got {self.node}")
        if _finite("straggler at_s", self.at_s) < 0:
            raise ConfigurationError(f"straggler at_s must be >= 0, got {self.at_s}")
        if not 0.0 < self.slowdown < 1.0:
            raise ConfigurationError(
                f"slowdown must be in (0, 1) — the fraction of speed the "
                f"node retains — got {self.slowdown}"
            )
        if _finite("straggler duration_s", self.duration_s) <= 0:
            raise ConfigurationError(
                f"straggler duration_s must be > 0, got {self.duration_s}"
            )

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s

    def cache_key(self) -> tuple:
        return ("straggler", self.node, self.at_s, self.slowdown, self.duration_s)


@dataclass(frozen=True)
class NetworkDegrade:
    """The interconnect keeps ``factor`` of its capacity for a window.

    Applied on top of the switch contention model: every network
    resource's capacity is multiplied by ``factor`` (in (0, 1)) between
    ``at_s`` and ``at_s + duration_s``.  Overlapping degrades compose.
    """

    factor: float
    at_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if not 0.0 < self.factor < 1.0:
            raise ConfigurationError(
                f"degrade factor must be in (0, 1) — the fraction of "
                f"capacity retained — got {self.factor}"
            )
        if _finite("degrade at_s", self.at_s) < 0:
            raise ConfigurationError(f"degrade at_s must be >= 0, got {self.at_s}")
        if _finite("degrade duration_s", self.duration_s) <= 0:
            raise ConfigurationError(
                f"degrade duration_s must be > 0, got {self.duration_s}"
            )

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s

    def cache_key(self) -> tuple:
        return ("net-degrade", self.factor, self.at_s, self.duration_s)


#: the event types a :class:`FaultSchedule` accepts
_EVENT_TYPES = (NodeCrash, Straggler, NetworkDegrade)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, deterministic set of fault events for one scenario.

    Events sort stably by onset time at construction (simultaneous
    events keep their given order), mirroring
    :class:`~repro.workloads.protocol.TimedTrace`.  An empty schedule is
    the explicit "healthy" scenario: injecting it is guaranteed
    bit-identical to not injecting anything (property-tested).
    """

    events: tuple = ()
    name: str = ""

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, _EVENT_TYPES):
                raise ConfigurationError(
                    f"not a fault event: {event!r} (expected NodeCrash, "
                    "Straggler, or NetworkDegrade)"
                )
        object.__setattr__(
            self, "events", tuple(sorted(events, key=lambda e: e.at_s))
        )

    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def span_s(self) -> float:
        """Onset of the last event (0.0 for an empty schedule)."""
        return self.events[-1].at_s if self.events else 0.0

    def cache_key(self) -> tuple:
        return (
            "faults",
            self.name,
            tuple(event.cache_key() for event in self.events),
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        """Merge two scenarios (events re-sort by onset)."""
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        name = self.name or other.name
        if self.name and other.name and self.name != other.name:
            name = f"{self.name}+{other.name}"
        return FaultSchedule(events=self.events + other.events, name=name)


def _unit_hash(seed: int, token: str, attempt: int) -> float:
    """A deterministic pseudo-uniform draw in [0, 1) from (seed, token,
    attempt) — stable across processes and runs (unlike ``hash()``)."""
    digest = hashlib.sha256(f"{seed}:{token}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FailurePolicy:
    """What the cluster does with the jobs a crash kills.

    ``abort_and_retry`` (the default) loses the killed job's progress and
    re-queues it after a capped exponential backoff:
    ``min(backoff_cap_s, backoff_base_s * 2**(attempt-1))``, stretched by
    a deterministic jitter in ``[0, jitter]`` derived from
    ``(seed, job name, attempt)`` — the same job retries at the same
    instants in every run, but distinct jobs do not thundering-herd.
    After ``max_retries`` kills the job is dropped.  ``drop`` sheds
    killed jobs immediately.

    ``transitions`` prices the crash itself: a crashed node draws the
    model's gated residual power while down, and its reboot is a waking
    transition of ``boot_s`` at transition power — the energy the
    simulator reports as ``recovery_energy_j``.
    """

    mode: str = "abort-and-retry"
    max_retries: int = 3
    backoff_base_s: float = 1.0
    backoff_cap_s: float = 60.0
    jitter: float = 0.0
    seed: int = 0
    transitions: PowerStateModel = field(default=TRADITIONAL_SERVER)

    def __post_init__(self) -> None:
        if self.mode not in ("abort-and-retry", "drop"):
            raise ConfigurationError(
                f"failure-policy mode must be 'abort-and-retry' or 'drop', "
                f"got {self.mode!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if _finite("backoff_base_s", self.backoff_base_s) <= 0:
            raise ConfigurationError(
                f"backoff_base_s must be > 0, got {self.backoff_base_s}"
            )
        if not self.backoff_cap_s >= self.backoff_base_s:
            raise ConfigurationError(
                f"backoff_cap_s ({self.backoff_cap_s}) must be >= "
                f"backoff_base_s ({self.backoff_base_s})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    # ------------------------------------------------------------ constructors
    @classmethod
    def abort_and_retry(
        cls,
        max_retries: int = 3,
        backoff_base_s: float = 1.0,
        backoff_cap_s: float = 60.0,
        jitter: float = 0.0,
        seed: int = 0,
        transitions: PowerStateModel = TRADITIONAL_SERVER,
    ) -> "FailurePolicy":
        return cls(
            mode="abort-and-retry",
            max_retries=max_retries,
            backoff_base_s=backoff_base_s,
            backoff_cap_s=backoff_cap_s,
            jitter=jitter,
            seed=seed,
            transitions=transitions,
        )

    @classmethod
    def drop(
        cls, transitions: PowerStateModel = TRADITIONAL_SERVER
    ) -> "FailurePolicy":
        return cls(mode="drop", max_retries=0, transitions=transitions)

    # --------------------------------------------------------------- behaviour
    @property
    def retries_enabled(self) -> bool:
        return self.mode == "abort-and-retry" and self.max_retries > 0

    def backoff_delay_s(self, job_name: str, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 1))
        if self.jitter:
            delay *= 1.0 + self.jitter * _unit_hash(self.seed, job_name, attempt)
        return delay

    def cache_key(self) -> tuple:
        return (
            "failure-policy",
            self.mode,
            self.max_retries,
            self.backoff_base_s,
            self.backoff_cap_s,
            self.jitter,
            self.seed,
            (
                self.transitions.shutdown_s,
                self.transitions.boot_s,
                self.transitions.transition_power_fraction,
                self.transitions.gated_power_fraction,
            ),
        )
