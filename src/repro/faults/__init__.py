"""repro.faults — nemesis-style fault injection for degraded-mode studies.

The paper's frontier assumes perfect health; this package injects the
failures a real cluster pays for, so every design is also scored on how
it behaves *degraded*:

* :mod:`repro.faults.schedule` — typed, seeded fault events
  (:class:`NodeCrash`, :class:`Straggler`, :class:`NetworkDegrade`), the
  deterministic :class:`FaultSchedule` container, and the
  :class:`FailurePolicy` (abort-and-retry with capped exponential
  backoff, or drop) governing killed jobs;
* :mod:`repro.faults.generators` — canonical scenarios:
  :func:`random_crashes`, :func:`rolling_restart`,
  :func:`correlated_rack_failure`;
* :mod:`repro.faults.trace` — :class:`FaultedTrace`, the workload a
  ``TimedTrace.with_faults(schedule)`` call produces; it carries the
  scenario through the search stack under fault-namespaced cache keys.

Quick use::

    from repro import TimedTrace, random_crashes

    trace = TimedTrace.from_schedule("diurnal", query, arrivals)
    scenario = random_crashes(num_nodes=16, horizon_s=trace.span_s,
                              count=3, mttr_s=120.0, seed=7)
    degraded = engine.search(grid, trace.with_faults(scenario,
                                                     replication_factor=2))
    pick = degraded.best_under_degraded_sla(30.0, metric="p99")
"""

from repro.faults.generators import (
    correlated_rack_failure,
    random_crashes,
    rolling_restart,
)
from repro.faults.schedule import (
    FailurePolicy,
    FaultSchedule,
    NetworkDegrade,
    NodeCrash,
    Straggler,
)
from repro.faults.trace import FaultedTrace

__all__ = [
    "FaultSchedule",
    "FaultedTrace",
    "FailurePolicy",
    "NodeCrash",
    "Straggler",
    "NetworkDegrade",
    "random_crashes",
    "rolling_restart",
    "correlated_rack_failure",
]
