"""A timed trace bound to a fault scenario: the degraded workload.

:meth:`TimedTrace.with_faults <repro.workloads.protocol.TimedTrace
.with_faults>` returns a :class:`FaultedTrace`: the same arrival
schedule, plus the :class:`~repro.faults.schedule.FaultSchedule` to
inject, the :class:`~repro.faults.schedule.FailurePolicy` governing
killed jobs, and (optionally) the replication the cluster runs with —
which is what decides whether a crash is survivable or the candidate is
infeasible-under-fault.

A :class:`FaultedTrace` satisfies both the plain ``Workload`` protocol
and the timed structural check (it has ``schedule()``), so it flows
through :class:`~repro.search.engine.DesignSpaceSearch` unchanged.  Its
:meth:`cache_key` namespaces the underlying trace's key with the
scenario's, so degraded evaluations can never collide with healthy rows
in the :class:`~repro.search.cache.EvaluationCache` — in either
direction.  An *empty* schedule routes down the exact healthy path
(serial or multiplexed) and is bit-identical to the bare trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError
from repro.faults.schedule import FailurePolicy, FaultSchedule
from repro.pstore.replication import ReplicatedLayout
from repro.workloads.protocol import TimedTrace, WeightedQuery

__all__ = ["FaultedTrace"]


@dataclass(frozen=True)
class FaultedTrace:
    """A :class:`~repro.workloads.protocol.TimedTrace` under a fault
    scenario.

    ``replication_factor=None`` (the default) runs without a replicated
    layout: crashes still kill and re-queue jobs, but no coverage check
    applies.  With a factor, each candidate gets a chained-declustering
    :class:`~repro.pstore.replication.ReplicatedLayout` of
    ``partitions_per_node`` partitions per node sized to its cluster,
    and a crash that strands every copy of a partition makes the
    candidate infeasible-under-fault instead of silently continuing.
    """

    trace: TimedTrace
    faults: FaultSchedule
    failure_policy: FailurePolicy = field(default_factory=FailurePolicy)
    replication_factor: int | None = None
    partitions_per_node: int = 2

    def __post_init__(self) -> None:
        if self.replication_factor is not None and self.replication_factor < 1:
            raise ConfigurationError(
                f"replication_factor must be >= 1, got {self.replication_factor}"
            )
        if self.partitions_per_node < 1:
            raise ConfigurationError(
                f"partitions_per_node must be >= 1, got {self.partitions_per_node}"
            )

    # -------------------------------------------------- Workload protocol
    @property
    def name(self) -> str:
        scenario = self.faults.name or f"{len(self.faults)}-faults"
        return f"{self.trace.name}+{scenario}"

    def cache_key(self) -> tuple:
        return (
            "faulted-trace",
            self.trace.cache_key(),
            self.faults.cache_key(),
            self.failure_policy.cache_key(),
            self.replication_factor,
            self.partitions_per_node,
        )

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        return self.trace.weighted_queries()

    # ----------------------------------------------------- timed protocol
    def schedule(self):
        """The underlying ``(query, arrival_time_s)`` events — the
        presence of this accessor keeps the trace on the timed path."""
        return self.trace.schedule()

    @property
    def span_s(self) -> float:
        return self.trace.span_s

    @property
    def total_weight(self) -> float:
        return self.trace.total_weight

    def weights_only(self):
        return self.trace.weights_only()

    # ------------------------------------------------------------ faults
    @property
    def is_faulted(self) -> bool:
        """Whether any fault event will actually be injected."""
        return not self.faults.is_empty

    def layout_for(self, num_nodes: int) -> ReplicatedLayout | None:
        """The candidate-sized replicated layout, or ``None`` without
        replication.  Raises
        :class:`~repro.errors.ConfigurationError` when the factor cannot
        fit the cluster (more replicas than nodes)."""
        if self.replication_factor is None:
            return None
        return ReplicatedLayout(
            num_nodes=num_nodes,
            num_partitions=num_nodes * self.partitions_per_node,
            replication_factor=self.replication_factor,
        )

    def __len__(self) -> int:
        return len(self.trace)

    def __iter__(self) -> Iterator:
        return iter(self.trace)
