"""Multi-query workload suites (the paper's Section 7 future-work item).

"We acknowledge that to make these results more meaningful, we need to
expand the study to include entire workloads."

A :class:`WorkloadSuite` is a weighted mix of join workloads (weights are
relative execution frequencies).  It implements the
:class:`~repro.workloads.protocol.Workload` protocol, so every evaluation
layer — :class:`~repro.search.engine.DesignSpaceSearch`,
:class:`~repro.core.design_space.DesignSpaceExplorer` sweeps, and the
:class:`~repro.study.Study` facade — prices suites directly, with
memoization, multiprocessing fan-out, and Pareto/knee/SLA selection.
Execution mode is resolved *per query* (a suite can mix homogeneous- and
heterogeneous-mode joins on the same cluster).

:func:`evaluate_suite` prices the whole suite on one cluster design with
the analytical model; :func:`suite_tradeoff_curve` is the legacy sweep
entry point, now a thin shim over :class:`~repro.study.Study` that
returns bit-identical results to the pre-redesign implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.design_space import DesignSpaceExplorer, TradeoffCurve
from repro.core.model import ModelParameters, PStoreModel
from repro.errors import WorkloadError
from repro.workloads.protocol import WeightedQuery, join_cache_key
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["SuiteEntry", "WorkloadSuite", "evaluate_suite", "suite_tradeoff_curve"]


@dataclass(frozen=True)
class SuiteEntry:
    """One query in a suite with its relative frequency."""

    workload: JoinWorkloadSpec
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(
                f"{self.workload.name}: suite weight must be > 0, got {self.weight}"
            )


@dataclass(frozen=True)
class WorkloadSuite:
    """A named, weighted mix of join workloads."""

    name: str
    entries: tuple[SuiteEntry, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise WorkloadError(f"suite {self.name!r} has no entries")
        specs = [entry.workload for entry in self.entries]
        if len(set(specs)) != len(specs):
            raise WorkloadError(
                f"suite {self.name!r} contains the same workload twice; "
                "adjust the entry's weight instead"
            )

    @classmethod
    def of(cls, name: str, *workloads: JoinWorkloadSpec) -> "WorkloadSuite":
        """Equal-weight suite."""
        return cls(name=name, entries=tuple(SuiteEntry(w) for w in workloads))

    @property
    def total_weight(self) -> float:
        return sum(entry.weight for entry in self.entries)

    # ------------------------------------------------- Workload protocol
    def cache_key(self) -> tuple:
        return (
            "suite",
            self.name,
            tuple(
                (join_cache_key(entry.workload), entry.weight)
                for entry in self.entries
            ),
        )

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        return tuple(
            WeightedQuery(entry.workload, entry.weight) for entry in self.entries
        )

    def __iter__(self) -> Iterator[WeightedQuery]:
        return iter(self.weighted_queries())


@dataclass(frozen=True)
class SuiteEvaluation:
    """Suite-level totals for one cluster design."""

    suite: WorkloadSuite
    time_s: float  # weighted total busy time (sum of weight * response time)
    energy_j: float  # weighted total energy

    @property
    def mean_response_time_s(self) -> float:
        return self.time_s / self.suite.total_weight

    @property
    def mean_energy_j(self) -> float:
        return self.energy_j / self.suite.total_weight


def evaluate_suite(
    suite: WorkloadSuite,
    params: ModelParameters,
    warm_cache: bool = False,
    pipeline_cpu_cost: float = 1.0,
) -> SuiteEvaluation:
    """Price every query in the suite on one design and aggregate.

    Raises :class:`ModelError` if *any* query is infeasible on the design —
    a suite-level design must run its whole workload.
    """
    model = PStoreModel(
        params, warm_cache=warm_cache, pipeline_cpu_cost=pipeline_cpu_cost
    )
    total_time = 0.0
    total_energy = 0.0
    for entry in suite.entries:
        prediction = model.predict(entry.workload)
        total_time += entry.weight * prediction.time_s
        total_energy += entry.weight * prediction.energy_j
    return SuiteEvaluation(suite=suite, time_s=total_time, energy_j=total_energy)


def suite_tradeoff_curve(
    suite: WorkloadSuite,
    explorer: DesignSpaceExplorer,
) -> TradeoffCurve:
    """Sweep the explorer's mixes, pricing the whole suite at each design.

    Legacy shim: delegates to ``Study(explorer).with_workload(suite)`` —
    the suite now runs through the memoized search engine — and returns
    the same :class:`TradeoffCurve` (bit-identical times, energies, and
    labels) as the pre-redesign per-mix loop.  That loop always priced
    suites with the plain analytical model (``warm_cache`` only — never
    the explorer's ``strict_paper_conditions`` flag or custom evaluator),
    so the shim pins exactly that evaluator rather than adopting the
    explorer's.  Designs that cannot run every suite query are skipped,
    mirroring the single-query sweep's feasibility rule.
    """
    from repro.search.evaluators import ModelEvaluator
    from repro.study import Study

    return (
        Study(explorer)
        .with_workload(suite)
        .with_evaluator(ModelEvaluator(warm_cache=explorer.warm_cache))
        .run()
        .curve()
    )


def suite_from_selectivity_mix(
    name: str,
    base: JoinWorkloadSpec,
    probe_selectivities: Sequence[float],
    weights: Sequence[float] | None = None,
) -> WorkloadSuite:
    """Convenience: one base join at several probe selectivities.

    This captures the common analytics pattern of the same report running
    with different date-range predicates.
    """
    if weights is not None and len(weights) != len(probe_selectivities):
        raise WorkloadError("weights must match probe_selectivities in length")
    entries = []
    for index, selectivity in enumerate(probe_selectivities):
        workload = base.with_selectivities(probe=selectivity)
        workload = type(base)(
            **{
                **workload.__dict__,
                "name": f"{base.name}@L{selectivity:.0%}",
            }
        )
        entries.append(
            SuiteEntry(
                workload=workload,
                weight=1.0 if weights is None else weights[index],
            )
        )
    return WorkloadSuite(name=name, entries=tuple(entries))
