"""Query arrival schedules: streams instead of all-at-once concurrency.

Section 2 cites work that delays analytics "due to energy concerns"
[20, 23]; studying that trade requires queries arriving over time rather
than the Figure 3 setup where all concurrent joins start together.  These
generators produce start-time lists for the simulated executor's
stream mode (:meth:`repro.pstore.simulated.SimulatedPStore.run_stream`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["periodic_arrivals", "poisson_arrivals", "batched_arrivals"]


def periodic_arrivals(count: int, interval_s: float, start_s: float = 0.0) -> list[float]:
    """``count`` arrivals spaced ``interval_s`` apart."""
    if count <= 0:
        raise WorkloadError(f"count must be > 0, got {count}")
    if interval_s < 0 or start_s < 0:
        raise WorkloadError("interval and start must be >= 0")
    return [start_s + index * interval_s for index in range(count)]


def poisson_arrivals(
    count: int, rate_per_s: float, seed: int = 0, start_s: float = 0.0
) -> list[float]:
    """``count`` arrivals of a Poisson process with the given rate."""
    if count <= 0:
        raise WorkloadError(f"count must be > 0, got {count}")
    if rate_per_s <= 0:
        raise WorkloadError(f"rate must be > 0, got {rate_per_s}")
    if start_s < 0:
        raise WorkloadError(f"start must be >= 0, got {start_s}")
    # The first query arrives at the stream start; only the count - 1
    # spacings after it are exponential draws.  (Drawing `count` gaps and
    # overwriting times[0] = start_s after the cumsum — the old
    # implementation — made the first *spacing* the sum of two draws, so
    # the realized rate was biased low.)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_per_s, size=count - 1)
    times = np.concatenate(([start_s], start_s + np.cumsum(gaps)))
    return [float(t) for t in times]


def batched_arrivals(count: int) -> list[float]:
    """All queries at t=0 — the Figure 3/4 concurrency setup."""
    if count <= 0:
        raise WorkloadError(f"count must be > 0, got {count}")
    return [0.0] * count
