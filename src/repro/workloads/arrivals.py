"""Query arrival schedules: streams instead of all-at-once concurrency.

Section 2 cites work that delays analytics "due to energy concerns"
[20, 23]; studying that trade requires queries arriving over time rather
than the Figure 3 setup where all concurrent joins start together.  These
generators produce start-time lists for the simulated executor's
stream mode (:meth:`repro.pstore.simulated.SimulatedPStore.run_stream`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "periodic_arrivals",
    "poisson_arrivals",
    "batched_arrivals",
    "diurnal_arrivals",
    "bursty_arrivals",
]


def periodic_arrivals(count: int, interval_s: float, start_s: float = 0.0) -> list[float]:
    """``count`` arrivals spaced ``interval_s`` apart."""
    if count <= 0:
        raise WorkloadError(f"count must be > 0, got {count}")
    if interval_s < 0 or start_s < 0:
        raise WorkloadError("interval and start must be >= 0")
    return [start_s + index * interval_s for index in range(count)]


def poisson_arrivals(
    count: int, rate_per_s: float, seed: int = 0, start_s: float = 0.0
) -> list[float]:
    """``count`` arrivals of a Poisson process with the given rate."""
    if count <= 0:
        raise WorkloadError(f"count must be > 0, got {count}")
    if rate_per_s <= 0:
        raise WorkloadError(f"rate must be > 0, got {rate_per_s}")
    if start_s < 0:
        raise WorkloadError(f"start must be >= 0, got {start_s}")
    # The first query arrives at the stream start; only the count - 1
    # spacings after it are exponential draws.  (Drawing `count` gaps and
    # overwriting times[0] = start_s after the cumsum — the old
    # implementation — made the first *spacing* the sum of two draws, so
    # the realized rate was biased low.)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_per_s, size=count - 1)
    times = np.concatenate(([start_s], start_s + np.cumsum(gaps)))
    return [float(t) for t in times]


def batched_arrivals(count: int) -> list[float]:
    """All queries at t=0 — the Figure 3/4 concurrency setup."""
    if count <= 0:
        raise WorkloadError(f"count must be > 0, got {count}")
    return [0.0] * count


def _thinned_arrivals(
    count: int,
    max_rate_per_s: float,
    rate_at,
    seed: int,
    start_s: float,
) -> list[float]:
    """``count`` arrivals of an inhomogeneous Poisson process by thinning.

    A homogeneous process at ``max_rate_per_s`` proposes candidate times;
    each is accepted with probability ``rate_at(t) / max_rate_per_s``
    (Lewis & Shedler), so accepted arrivals follow the time-varying rate
    exactly.
    """
    rng = np.random.default_rng(seed)
    times: list[float] = []
    t = start_s
    while len(times) < count:
        t += float(rng.exponential(scale=1.0 / max_rate_per_s))
        if rng.random() * max_rate_per_s <= rate_at(t):
            times.append(t)
    return times


def diurnal_arrivals(
    count: int,
    base_rate_per_s: float,
    peak_rate_per_s: float,
    period_s: float,
    seed: int = 0,
    start_s: float = 0.0,
) -> list[float]:
    """``count`` arrivals whose rate swings sinusoidally over a day.

    The instantaneous rate is

        rate(t) = base + (peak - base) * (1 - cos(2*pi*(t - start)/period)) / 2

    so the stream opens at the trough (``base_rate_per_s``), crests at
    ``peak_rate_per_s`` half a period in, and repeats — the
    diurnal load shape that makes powering nodes down during quiet hours
    worthwhile at all.  ``base_rate_per_s`` may be 0 (completely quiet
    troughs).
    """
    if count <= 0:
        raise WorkloadError(f"count must be > 0, got {count}")
    if peak_rate_per_s <= 0:
        raise WorkloadError(f"peak rate must be > 0, got {peak_rate_per_s}")
    if base_rate_per_s < 0 or base_rate_per_s > peak_rate_per_s:
        raise WorkloadError(
            f"base rate must be in [0, peak], got {base_rate_per_s}"
        )
    if period_s <= 0:
        raise WorkloadError(f"period must be > 0, got {period_s}")
    if start_s < 0:
        raise WorkloadError(f"start must be >= 0, got {start_s}")

    swing = peak_rate_per_s - base_rate_per_s

    def rate_at(t: float) -> float:
        phase = 2.0 * np.pi * (t - start_s) / period_s
        return base_rate_per_s + swing * (1.0 - np.cos(phase)) / 2.0

    return _thinned_arrivals(count, peak_rate_per_s, rate_at, seed, start_s)


def bursty_arrivals(
    count: int,
    burst_rate_per_s: float,
    burst_s: float,
    idle_s: float,
    idle_rate_per_s: float = 0.0,
    seed: int = 0,
    start_s: float = 0.0,
) -> list[float]:
    """``count`` arrivals from alternating on/off phases (burst first).

    The rate is ``burst_rate_per_s`` for ``burst_s`` seconds, then
    ``idle_rate_per_s`` (0 by default: total silence) for ``idle_s``
    seconds, repeating — the on/off load shape of batchy ingest jobs and
    flash crowds.
    """
    if count <= 0:
        raise WorkloadError(f"count must be > 0, got {count}")
    if burst_rate_per_s <= 0:
        raise WorkloadError(f"burst rate must be > 0, got {burst_rate_per_s}")
    if not 0.0 <= idle_rate_per_s <= burst_rate_per_s:
        raise WorkloadError(
            f"idle rate must be in [0, burst rate], got {idle_rate_per_s}"
        )
    if burst_s <= 0:
        raise WorkloadError(f"burst duration must be > 0, got {burst_s}")
    if idle_s < 0:
        raise WorkloadError(f"idle duration must be >= 0, got {idle_s}")
    if start_s < 0:
        raise WorkloadError(f"start must be >= 0, got {start_s}")

    cycle_s = burst_s + idle_s

    def rate_at(t: float) -> float:
        position = (t - start_s) % cycle_s
        return burst_rate_per_s if position < burst_s else idle_rate_per_s

    return _thinned_arrivals(count, burst_rate_per_s, rate_at, seed, start_s)
