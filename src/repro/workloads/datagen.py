"""Seeded synthetic TPC-H-like data generation.

The functional P-store executor and the correctness tests need real tuples.
These generators produce numpy record batches with the distributions the
experiments rely on:

* LINEITEM rows reference ORDERS keys with 1-7 lines per order (TPC-H's
  distribution, mean 4), so join fan-out is realistic;
* ``l_shipdate`` / ``o_orderdate`` are uniform over the TPC-H date range,
  which makes predicate selectivities directly controllable
  (:func:`date_cutoff_for_selectivity`);
* all generation is driven by an explicit seed for reproducibility.

Volumes here are intentionally small (tests run at "milli scale factors");
large-scale behaviour is the simulator's job.
"""

from __future__ import annotations

import numpy as np

from repro.data import RecordBatch
from repro.errors import WorkloadError
from repro.workloads import tpch

__all__ = [
    "DATE_MIN",
    "DATE_MAX",
    "generate_orders",
    "generate_lineitem",
    "generate_join_pair",
    "date_cutoff_for_selectivity",
]

#: TPC-H date domain expressed as integer day offsets (1992-01-01 .. 1998-08-02).
DATE_MIN = 0
DATE_MAX = 2405

_LINES_PER_ORDER_MIN = 1
_LINES_PER_ORDER_MAX = 7


def _check_scale(scale_factor: float) -> None:
    if scale_factor <= 0:
        raise WorkloadError(f"scale factor must be > 0, got {scale_factor}")


def generate_orders(scale_factor: float, seed: int = 0) -> RecordBatch:
    """Synthetic ORDERS with the paper's four-column join projection."""
    _check_scale(scale_factor)
    rows = tpch.ORDERS.rows(scale_factor)
    if rows == 0:
        raise WorkloadError(f"scale factor {scale_factor} yields zero ORDERS rows")
    rng = np.random.default_rng(seed)
    num_customers = max(1, tpch.CUSTOMER.rows(scale_factor))
    return RecordBatch(
        {
            "o_orderkey": np.arange(1, rows + 1, dtype=np.int64),
            "o_custkey": rng.integers(1, num_customers + 1, size=rows, dtype=np.int64),
            "o_orderdate": rng.integers(DATE_MIN, DATE_MAX + 1, size=rows, dtype=np.int32),
            "o_shippriority": np.zeros(rows, dtype=np.int32),
        }
    )


def generate_lineitem(
    scale_factor: float,
    seed: int = 0,
    orders: RecordBatch | None = None,
) -> RecordBatch:
    """Synthetic LINEITEM rows referencing ORDERS keys.

    If ``orders`` is given, line items reference exactly its keys (so the
    pair joins consistently); otherwise keys are drawn from the cardinality
    implied by the scale factor.
    """
    _check_scale(scale_factor)
    rng = np.random.default_rng(seed + 1)
    if orders is not None:
        order_keys = orders.column("o_orderkey")
    else:
        num_orders = tpch.ORDERS.rows(scale_factor)
        if num_orders == 0:
            raise WorkloadError(f"scale factor {scale_factor} yields zero orders")
        order_keys = np.arange(1, num_orders + 1, dtype=np.int64)

    lines_per_order = rng.integers(
        _LINES_PER_ORDER_MIN, _LINES_PER_ORDER_MAX + 1, size=len(order_keys)
    )
    l_orderkey = np.repeat(order_keys, lines_per_order)
    rows = len(l_orderkey)
    return RecordBatch(
        {
            "l_orderkey": l_orderkey.astype(np.int64),
            "l_quantity": rng.integers(1, 51, size=rows).astype(np.float64),
            "l_extendedprice": rng.uniform(900.0, 105_000.0, size=rows),
            "l_discount": rng.uniform(0.0, 0.10, size=rows),
            "l_tax": rng.uniform(0.0, 0.08, size=rows),
            # returnflag in {0:'A', 1:'N', 2:'R'}; linestatus in {0:'O', 1:'F'}
            "l_returnflag": rng.integers(0, 3, size=rows, dtype=np.int8),
            "l_linestatus": rng.integers(0, 2, size=rows, dtype=np.int8),
            "l_shipdate": rng.integers(DATE_MIN, DATE_MAX + 1, size=rows, dtype=np.int32),
        }
    )


def generate_join_pair(
    scale_factor: float, seed: int = 0
) -> tuple[RecordBatch, RecordBatch]:
    """A consistent (orders, lineitem) pair for join tests."""
    orders = generate_orders(scale_factor, seed=seed)
    lineitem = generate_lineitem(scale_factor, seed=seed, orders=orders)
    return orders, lineitem


def date_cutoff_for_selectivity(selectivity: float) -> int:
    """Date cutoff ``d`` such that ``date < d`` matches about ``selectivity``.

    Valid because generated dates are uniform on [DATE_MIN, DATE_MAX].
    """
    if not 0.0 <= selectivity <= 1.0:
        raise WorkloadError(f"selectivity must be in [0, 1], got {selectivity}")
    span = DATE_MAX - DATE_MIN + 1
    return DATE_MIN + int(round(selectivity * span))
