"""Data skew: the Section 4.1 bottleneck the paper defers to future work.

"Although partitioning tools try to avoid data skew, even a small skew can
cause an imbalance in the utilization of the cluster nodes, especially as
the system scales."

This module provides skewed partition-weight generators that plug into both
P-store executors (``partition_weights``) and a Zipf key generator for the
functional engine, so the imbalance effect can be studied at both the
timing/energy level and the real-tuple level.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "zipf_partition_weights",
    "hot_node_weights",
    "zipf_keys",
    "imbalance",
]


def zipf_partition_weights(num_nodes: int, theta: float) -> list[float]:
    """Partition weights following a Zipf(theta) popularity law.

    ``theta = 0`` is uniform; larger values concentrate data on the first
    nodes.  Weights are normalized to sum to ``num_nodes`` so that a weight
    of 1.0 means "an even share".
    """
    if num_nodes <= 0:
        raise WorkloadError(f"num_nodes must be > 0, got {num_nodes}")
    if theta < 0:
        raise WorkloadError(f"theta must be >= 0, got {theta}")
    raw = np.array([1.0 / (rank**theta) for rank in range(1, num_nodes + 1)])
    weights = raw / raw.sum() * num_nodes
    return [float(w) for w in weights]


def hot_node_weights(num_nodes: int, hot_fraction: float) -> list[float]:
    """One node holds ``hot_fraction`` of the data, the rest share evenly.

    The classic "hot partition" scenario: ``hot_fraction = 1/num_nodes``
    is uniform.
    """
    if num_nodes <= 1:
        raise WorkloadError("hot-node skew needs at least 2 nodes")
    if not 0.0 < hot_fraction < 1.0:
        raise WorkloadError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
    cold = (1.0 - hot_fraction) / (num_nodes - 1)
    weights = [hot_fraction] + [cold] * (num_nodes - 1)
    return [w * num_nodes for w in weights]


def zipf_keys(
    num_rows: int, num_distinct: int, theta: float, seed: int = 0
) -> np.ndarray:
    """Zipf-distributed join keys for functional skew studies.

    ``theta = 0`` draws uniformly over ``num_distinct`` keys; larger values
    make low-numbered keys proportionally hotter.
    """
    if num_rows <= 0 or num_distinct <= 0:
        raise WorkloadError("num_rows and num_distinct must be > 0")
    if theta < 0:
        raise WorkloadError(f"theta must be >= 0, got {theta}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_distinct + 1, dtype=np.float64)
    probabilities = ranks**-theta
    probabilities /= probabilities.sum()
    return rng.choice(
        np.arange(1, num_distinct + 1, dtype=np.int64), size=num_rows, p=probabilities
    )


def imbalance(weights: list[float]) -> float:
    """Max weight over mean weight (1.0 = perfectly balanced)."""
    if not weights:
        raise WorkloadError("no weights")
    mean = sum(weights) / len(weights)
    if mean <= 0:
        raise WorkloadError("weights must have positive mean")
    return max(weights) / mean
