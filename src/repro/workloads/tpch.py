"""TPC-H schema metadata and sizing.

Row counts scale linearly with the scale factor (except the fixed NATION and
REGION tables).  Two size notions matter for the paper:

* **full size** — the complete table, used when reasoning about replication
  and repartitioning volumes in the Vertica experiments;
* **projected size** — the paper's P-store experiments store only the four
  join-relevant columns of LINEITEM and ORDERS as 20-byte tuples
  (Section 4.3), giving the published working sets of 48 GB LINEITEM and
  12 GB ORDERS at scale factor 400.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

__all__ = [
    "Column",
    "TableSchema",
    "LINEITEM",
    "ORDERS",
    "CUSTOMER",
    "SUPPLIER",
    "PART",
    "PARTSUPP",
    "NATION",
    "REGION",
    "TPCH_TABLES",
    "LINEITEM_JOIN_PROJECTION",
    "ORDERS_JOIN_PROJECTION",
    "rows_at_scale",
    "full_size_mb",
    "projected_size_mb",
]

_BYTES_PER_MB = 1_000_000.0


@dataclass(frozen=True)
class Column:
    """One column: name and stored width in bytes."""

    name: str
    bytes: int

    def __post_init__(self) -> None:
        if self.bytes <= 0:
            raise WorkloadError(f"column {self.name!r}: width must be > 0")


@dataclass(frozen=True)
class TableSchema:
    """A TPC-H table: columns and cardinality scaling."""

    name: str
    rows_per_sf: float
    columns: tuple[Column, ...]
    fixed_cardinality: bool = False

    def __post_init__(self) -> None:
        if self.rows_per_sf <= 0:
            raise WorkloadError(f"table {self.name!r}: rows_per_sf must be > 0")
        if not self.columns:
            raise WorkloadError(f"table {self.name!r}: no columns")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise WorkloadError(f"table {self.name!r}: duplicate column names")

    @property
    def row_bytes(self) -> int:
        """Full row width in bytes."""
        return sum(column.bytes for column in self.columns)

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise WorkloadError(f"table {self.name!r} has no column {name!r}")

    def projection_bytes(self, names: tuple[str, ...]) -> int:
        """Row width of a column subset."""
        return sum(self.column(name).bytes for name in names)

    def rows(self, scale_factor: float) -> int:
        if scale_factor <= 0:
            raise WorkloadError(f"scale factor must be > 0, got {scale_factor}")
        if self.fixed_cardinality:
            return int(self.rows_per_sf)
        return int(round(self.rows_per_sf * scale_factor))


# Column widths follow the TPC-H specification's storage estimates
# (integers/dates 4-8 B, decimals 8 B, fixed char fields at declared length).

LINEITEM = TableSchema(
    name="lineitem",
    rows_per_sf=6_000_000,
    columns=(
        Column("l_orderkey", 8),
        Column("l_partkey", 8),
        Column("l_suppkey", 8),
        Column("l_linenumber", 4),
        Column("l_quantity", 8),
        Column("l_extendedprice", 8),
        Column("l_discount", 4),
        Column("l_tax", 8),
        Column("l_returnflag", 1),
        Column("l_linestatus", 1),
        Column("l_shipdate", 4),
        Column("l_commitdate", 4),
        Column("l_receiptdate", 4),
        Column("l_shipinstruct", 25),
        Column("l_shipmode", 10),
        Column("l_comment", 27),
    ),
)

ORDERS = TableSchema(
    name="orders",
    rows_per_sf=1_500_000,
    columns=(
        Column("o_orderkey", 8),
        Column("o_custkey", 8),
        Column("o_orderstatus", 1),
        Column("o_totalprice", 8),
        Column("o_orderdate", 4),
        Column("o_orderpriority", 15),
        Column("o_clerk", 15),
        Column("o_shippriority", 4),
        Column("o_comment", 49),
    ),
)

CUSTOMER = TableSchema(
    name="customer",
    rows_per_sf=150_000,
    columns=(
        Column("c_custkey", 8),
        Column("c_name", 25),
        Column("c_address", 40),
        Column("c_nationkey", 4),
        Column("c_phone", 15),
        Column("c_acctbal", 8),
        Column("c_mktsegment", 10),
        Column("c_comment", 117),
    ),
)

SUPPLIER = TableSchema(
    name="supplier",
    rows_per_sf=10_000,
    columns=(
        Column("s_suppkey", 8),
        Column("s_name", 25),
        Column("s_address", 40),
        Column("s_nationkey", 4),
        Column("s_phone", 15),
        Column("s_acctbal", 8),
        Column("s_comment", 101),
    ),
)

PART = TableSchema(
    name="part",
    rows_per_sf=200_000,
    columns=(
        Column("p_partkey", 8),
        Column("p_name", 55),
        Column("p_mfgr", 25),
        Column("p_brand", 10),
        Column("p_type", 25),
        Column("p_size", 4),
        Column("p_container", 10),
        Column("p_retailprice", 8),
        Column("p_comment", 23),
    ),
)

PARTSUPP = TableSchema(
    name="partsupp",
    rows_per_sf=800_000,
    columns=(
        Column("ps_partkey", 8),
        Column("ps_suppkey", 8),
        Column("ps_availqty", 4),
        Column("ps_supplycost", 8),
        Column("ps_comment", 199),
    ),
)

NATION = TableSchema(
    name="nation",
    rows_per_sf=25,
    fixed_cardinality=True,
    columns=(
        Column("n_nationkey", 4),
        Column("n_name", 25),
        Column("n_regionkey", 4),
        Column("n_comment", 152),
    ),
)

REGION = TableSchema(
    name="region",
    rows_per_sf=5,
    fixed_cardinality=True,
    columns=(
        Column("r_regionkey", 4),
        Column("r_name", 25),
        Column("r_comment", 152),
    ),
)

TPCH_TABLES: dict[str, TableSchema] = {
    table.name: table
    for table in (LINEITEM, ORDERS, CUSTOMER, SUPPLIER, PART, PARTSUPP, NATION, REGION)
}

#: Section 4.3's LINEITEM projection, stored as 20-byte tuples.
LINEITEM_JOIN_PROJECTION: tuple[str, ...] = (
    "l_orderkey",
    "l_extendedprice",
    "l_discount",
    "l_shipdate",
)

#: Section 4.3's ORDERS projection, stored as 20-byte tuples.
ORDERS_JOIN_PROJECTION: tuple[str, ...] = (
    "o_orderkey",
    "o_orderdate",
    "o_shippriority",
    "o_custkey",
)

#: The paper's fixed width for the four-column projections ("these four
#: column projections (20B) were stored as tuples in memory").
PROJECTED_TUPLE_BYTES = 20


def rows_at_scale(table: TableSchema, scale_factor: float) -> int:
    """Cardinality of ``table`` at a TPC-H scale factor."""
    return table.rows(scale_factor)


def full_size_mb(table: TableSchema, scale_factor: float) -> float:
    """Full-width stored size in MB."""
    return table.rows(scale_factor) * table.row_bytes / _BYTES_PER_MB


def projected_size_mb(
    table: TableSchema,
    scale_factor: float,
    columns: tuple[str, ...] | None = None,
) -> float:
    """Projected size in MB.

    With ``columns=None`` and one of the paper's two join projections in
    mind, the paper's fixed 20-byte tuple width is used — this reproduces
    the published working sets (48 GB LINEITEM / 12 GB ORDERS at SF 400,
    120 GB / 30 GB at SF 1000).
    """
    if columns is None:
        row_bytes: float = PROJECTED_TUPLE_BYTES
    else:
        row_bytes = table.projection_bytes(columns)
    return table.rows(scale_factor) * row_bytes / _BYTES_PER_MB
