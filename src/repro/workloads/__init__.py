"""Workload substrate: TPC-H schema and sizing, data generation, query specs.

* :mod:`repro.workloads.tpch` — table schemas, rows-per-scale-factor, full
  and projected sizes (the paper stores 4-column 20-byte projections of
  LINEITEM and ORDERS for its P-store experiments).
* :mod:`repro.workloads.datagen` — seeded synthetic generators producing
  numpy record batches with TPC-H-like distributions, used by the
  functional executor and the correctness tests.
* :mod:`repro.workloads.queries` — the join workload specifications used in
  the experiments (TPC-H Q3's LINEITEM x ORDERS join at configurable
  selectivities, the Section 5.4 700 GB x 2.8 TB join...).
* :mod:`repro.workloads.protocol` — the :class:`Workload` protocol every
  evaluation layer accepts: single joins (:class:`SingleJoin`), weighted
  suites (:class:`~repro.workloads.suite.WorkloadSuite`), and
  arrival-trace mixes (:class:`ArrivalMix`).
* :mod:`repro.workloads.microbench` — the Figure 6 single-node in-memory
  hash join microbenchmark.
"""

from repro.workloads.microbench import MicrobenchResult, MicroJoinSpec, simulate_microbench
from repro.workloads.protocol import (
    ArrivalMix,
    SingleJoin,
    TimedTrace,
    WeightedQuery,
    Workload,
    as_workload,
    is_timed,
)
from repro.workloads.queries import (
    JoinMethod,
    JoinWorkloadSpec,
    q3_join,
    section54_join,
)
from repro.workloads.tpch import (
    LINEITEM,
    LINEITEM_JOIN_PROJECTION,
    ORDERS,
    ORDERS_JOIN_PROJECTION,
    TPCH_TABLES,
    TableSchema,
    full_size_mb,
    projected_size_mb,
    rows_at_scale,
)

__all__ = [
    "TableSchema",
    "TPCH_TABLES",
    "LINEITEM",
    "ORDERS",
    "LINEITEM_JOIN_PROJECTION",
    "ORDERS_JOIN_PROJECTION",
    "rows_at_scale",
    "full_size_mb",
    "projected_size_mb",
    "JoinMethod",
    "JoinWorkloadSpec",
    "q3_join",
    "section54_join",
    "Workload",
    "WeightedQuery",
    "SingleJoin",
    "ArrivalMix",
    "TimedTrace",
    "as_workload",
    "is_timed",
    "MicroJoinSpec",
    "MicrobenchResult",
    "simulate_microbench",
]
