"""Join workload specifications used throughout the experiments.

A :class:`JoinWorkloadSpec` captures the paper's hash-join parameters
(Table 3's ``Bld``, ``Prb``, ``Sbld``, ``Sprb``) plus the execution method.
Factories cover the two joins the paper studies:

* :func:`q3_join` — the partition-incompatible TPC-H Q3 join between
  LINEITEM and ORDERS at a given scale factor (Sections 4.3 and 5.2);
* :func:`section54_join` — the design-space join between a 700 GB ORDERS
  table and a 2.8 TB LINEITEM table (Section 5.4, Figures 1b/10/11).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import WorkloadError
from repro.units import gb, tb
from repro.workloads import tpch

__all__ = ["JoinMethod", "JoinWorkloadSpec", "q3_join", "section54_join"]


class JoinMethod(enum.Enum):
    """How a partition-incompatible join moves data (Section 4.3)."""

    SHUFFLE = "shuffle"  # repartition both tables on the join key
    BROADCAST = "broadcast"  # broadcast the (filtered) build table
    LOCAL = "local"  # partition-compatible: no network at all
    AUTO = "auto"  # let the planner pick


@dataclass(frozen=True)
class JoinWorkloadSpec:
    """One parallel hash join: volumes, selectivities, method.

    ``build_volume_mb``/``probe_volume_mb`` are *pre-predicate* table sizes
    (the model's ``Bld`` and ``Prb``); selectivities are the fraction of
    tuples passing the scan predicates (``Sbld``, ``Sprb``).
    """

    name: str
    build_volume_mb: float
    probe_volume_mb: float
    build_selectivity: float
    probe_selectivity: float
    method: JoinMethod = JoinMethod.SHUFFLE
    #: bytes per qualifying tuple (affects hash-table sizing only via volume,
    #: recorded for documentation/functional parity)
    tuple_bytes: int = tpch.PROJECTED_TUPLE_BYTES

    def __post_init__(self) -> None:
        if self.build_volume_mb <= 0 or self.probe_volume_mb <= 0:
            raise WorkloadError(f"{self.name}: table volumes must be > 0")
        for label, sel in (
            ("build", self.build_selectivity),
            ("probe", self.probe_selectivity),
        ):
            if not 0.0 < sel <= 1.0:
                raise WorkloadError(
                    f"{self.name}: {label} selectivity must be in (0, 1], got {sel}"
                )

    # ------------------------------------------------------------ derived
    @property
    def qualifying_build_mb(self) -> float:
        """Hash-table payload: build volume after the predicate."""
        return self.build_volume_mb * self.build_selectivity

    @property
    def qualifying_probe_mb(self) -> float:
        return self.probe_volume_mb * self.probe_selectivity

    def hash_table_share_mb(self, num_join_nodes: int) -> float:
        """Per-node hash-table size when partitioned over ``num_join_nodes``."""
        if num_join_nodes <= 0:
            raise WorkloadError(f"num_join_nodes must be > 0, got {num_join_nodes}")
        return self.qualifying_build_mb / num_join_nodes

    def with_selectivities(
        self, build: float | None = None, probe: float | None = None
    ) -> "JoinWorkloadSpec":
        """Copy with replaced selectivities (used by the sweep experiments)."""
        changes: dict[str, float] = {}
        if build is not None:
            changes["build_selectivity"] = build
        if probe is not None:
            changes["probe_selectivity"] = probe
        return replace(self, **changes)

    def with_method(self, method: JoinMethod) -> "JoinWorkloadSpec":
        return replace(self, method=method)

    def __str__(self) -> str:
        return (
            f"{self.name}: build {self.build_volume_mb:g}MB@"
            f"{self.build_selectivity:.0%} x probe {self.probe_volume_mb:g}MB@"
            f"{self.probe_selectivity:.0%} [{self.method.value}]"
        )


def q3_join(
    scale_factor: float,
    build_selectivity: float = 0.05,
    probe_selectivity: float = 0.05,
    method: JoinMethod = JoinMethod.SHUFFLE,
) -> JoinWorkloadSpec:
    """The TPC-H Q3 LINEITEM x ORDERS join of Sections 4.3 and 5.2.

    ORDERS (hash-partitioned on O_CUSTKEY) is the build side, LINEITEM
    (partitioned on L_SHIPDATE) the probe side; neither matches the
    ORDERKEY join key, so the join is partition incompatible.  Volumes are
    the paper's 20-byte four-column projections.
    """
    return JoinWorkloadSpec(
        name=f"tpch-q3-join-sf{scale_factor:g}",
        build_volume_mb=tpch.projected_size_mb(tpch.ORDERS, scale_factor),
        probe_volume_mb=tpch.projected_size_mb(tpch.LINEITEM, scale_factor),
        build_selectivity=build_selectivity,
        probe_selectivity=probe_selectivity,
        method=method,
    )


def section54_join(
    build_selectivity: float = 0.10,
    probe_selectivity: float = 0.01,
) -> JoinWorkloadSpec:
    """Section 5.4's design-space join: 700 GB ORDERS x 2.8 TB LINEITEM.

    The default selectivities are those of Figure 1(b) (ORDERS 10%,
    LINEITEM 1%); Figures 10 and 11 vary them via
    :meth:`JoinWorkloadSpec.with_selectivities`.
    """
    return JoinWorkloadSpec(
        name="section5.4-join",
        build_volume_mb=gb(700.0),
        probe_volume_mb=tb(2.8),
        build_selectivity=build_selectivity,
        probe_selectivity=probe_selectivity,
    )
