"""The first-class ``Workload`` protocol unifying single joins and mixes.

The paper's Section 7 concedes that its single-join results must "expand
the study to include entire workloads".  This module defines the one
interface every evaluation layer — :class:`~repro.search.evaluators
.SearchEvaluator`, :class:`~repro.search.engine.DesignSpaceSearch`,
:class:`~repro.core.design_space.DesignSpaceExplorer`, and the
:class:`~repro.study.Study` facade — accepts:

* ``name`` — a display name;
* ``cache_key()`` — a deterministic, hashable identity used to partition
  the evaluation cache (workload *types* carry distinct tags, so a join,
  a suite, and a trace mix sharing a name can never collide);
* ``weighted_queries()`` / iteration — the workload as weighted
  :class:`WeightedQuery` entries (weights are relative execution
  frequencies; a design's cost is the weight-summed cost of its entries).

Four implementations ship here and in :mod:`repro.workloads.suite`:

* :class:`SingleJoin` — one :class:`~repro.workloads.queries
  .JoinWorkloadSpec` at weight 1 (what every pre-redesign API took);
* :class:`~repro.workloads.suite.WorkloadSuite` — a named, weighted mix;
* :class:`ArrivalMix` — a mix derived from an arrival trace: each
  occurrence of a query in the trace adds one to its weight, so the
  schedules of :mod:`repro.workloads.arrivals` become searchable
  workloads;
* :class:`TimedTrace` — the *timed* sibling of :class:`ArrivalMix`: it
  keeps the ``(query, arrival_time_s)`` events instead of reducing them
  to weights, so stream-capable evaluators can replay the trace through
  :meth:`~repro.pstore.simulated.SimulatedPStore.run_stream`-style
  queueing simulation and score designs on response time, not just total
  cost.  :func:`is_timed` is how the evaluation stack tells the two
  apart.

Plain :class:`JoinWorkloadSpec` objects are accepted everywhere via
:func:`as_workload`, which wraps them in :class:`SingleJoin` — existing
call sites keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.errors import WorkloadError
from repro.workloads.queries import JoinWorkloadSpec

__all__ = [
    "ArrivalMix",
    "SingleJoin",
    "TimedTrace",
    "WeightedQuery",
    "Workload",
    "as_workload",
    "entry_cache_key",
    "is_timed",
    "join_cache_key",
]


def join_cache_key(query: JoinWorkloadSpec) -> tuple:
    """Deterministic identity of one join spec (the cache-key atom).

    Covers every spec field an evaluator can read — including
    ``tuple_bytes``, which custom evaluators may price even though the
    analytical model only reads volumes.
    """
    return (
        query.name,
        query.build_volume_mb,
        query.probe_volume_mb,
        query.build_selectivity,
        query.probe_selectivity,
        query.method.value,
        query.tuple_bytes,
    )


def entry_cache_key(query: JoinWorkloadSpec) -> tuple:
    """The per-entry evaluation-cache identity of one member join.

    This is the unit the search engine memoizes and dispatches at: every
    workload — single join, suite, trace mix — is flattened into its
    ``weighted_queries()`` entries, and each entry is cached under this
    key (weights apply at aggregation time, so the same join at weight 1
    and weight 5 shares one entry).  It deliberately equals
    :meth:`SingleJoin.cache_key`, so a single-join search and a suite
    containing that join read and write the same cache row.
    """
    return ("join", *join_cache_key(query))


@dataclass(frozen=True)
class WeightedQuery:
    """One join of a workload with its relative execution frequency."""

    query: JoinWorkloadSpec
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(
                f"{self.query.name}: workload weight must be > 0, got {self.weight}"
            )

    def __iter__(self) -> Iterator:
        """Unpack as the ``(spec, weight)`` pair the protocol promises."""
        return iter((self.query, self.weight))


@runtime_checkable
class Workload(Protocol):
    """Anything the evaluation stack can price on a cluster design.

    Structural: any object with ``name``, ``cache_key()`` and
    ``weighted_queries()`` qualifies — :func:`as_workload` checks for
    exactly these three members.
    """

    @property
    def name(self) -> str: ...

    def cache_key(self) -> tuple:
        """Deterministic hashable identity, unique across workload types."""
        ...

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        """The workload as weighted join entries, in evaluation order."""
        ...


@dataclass(frozen=True)
class SingleJoin:
    """A lone join as a :class:`Workload` (the pre-redesign default)."""

    query: JoinWorkloadSpec

    @property
    def name(self) -> str:
        return self.query.name

    def cache_key(self) -> tuple:
        return entry_cache_key(self.query)

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        return (WeightedQuery(self.query, 1.0),)

    def __iter__(self) -> Iterator[WeightedQuery]:
        return iter(self.weighted_queries())


def _normalized_events(
    name: str,
    events: Sequence[tuple[JoinWorkloadSpec, float]],
    kind: str,
) -> tuple[tuple[JoinWorkloadSpec, float], ...]:
    """Validate and time-sort one trace's ``(query, arrival_time_s)`` events.

    Shared by :meth:`ArrivalMix.from_trace` and :class:`TimedTrace`, so
    the weights-only and the timed view of one trace agree on ordering:
    events sort stably by arrival time (simultaneous arrivals keep their
    given order), and negative times are rejected.
    """
    if not len(events):
        raise WorkloadError(f"{kind} {name!r} needs at least one event")
    normalized = []
    for query, arrival_s in events:
        arrival_s = float(arrival_s)
        if arrival_s < 0:
            raise WorkloadError(
                f"{kind} {name!r}: arrival times must be >= 0, got {arrival_s}"
            )
        normalized.append((query, arrival_s))
    normalized.sort(key=lambda event: event[1])
    return tuple(normalized)


@dataclass(frozen=True)
class ArrivalMix:
    """A workload mix derived from a query arrival trace.

    Each arrival contributes one unit of weight to its query, so a trace
    where a daily report fires five times as often as a weekly rollup
    yields a 5:1 mix.  Build one with :meth:`from_trace` from the
    ``(query, arrival_time_s)`` events an arrival schedule produces
    (:mod:`repro.workloads.arrivals`).
    """

    name: str
    entries: tuple[WeightedQuery, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise WorkloadError(f"arrival mix {self.name!r} has no entries")
        specs = [entry.query for entry in self.entries]
        if len(set(specs)) != len(specs):
            raise WorkloadError(
                f"arrival mix {self.name!r} lists the same query twice"
            )

    @classmethod
    def from_trace(
        cls,
        name: str,
        events: Sequence[tuple[JoinWorkloadSpec, float]],
    ) -> "ArrivalMix":
        """Derive the mix from ``(query, arrival_time_s)`` trace events.

        Events are sorted by arrival time first (stably, so simultaneous
        arrivals keep their given order), then each event adds weight 1
        to its query.  Queries therefore keep *first-arrival* order —
        handing the same events in a different list order yields the
        identical mix.  Arrival times must be non-negative; they fix the
        trace's order but do not affect the weights (use
        :class:`TimedTrace` to keep them for queueing simulation).
        """
        ordered = _normalized_events(name, events, kind="arrival mix")
        counts: dict[JoinWorkloadSpec, int] = {}
        for query, _arrival_s in ordered:
            counts[query] = counts.get(query, 0) + 1
        return cls(
            name=name,
            entries=tuple(
                WeightedQuery(query, float(count)) for query, count in counts.items()
            ),
        )

    @property
    def total_weight(self) -> float:
        return sum(entry.weight for entry in self.entries)

    def cache_key(self) -> tuple:
        return (
            "trace",
            self.name,
            tuple((join_cache_key(e.query), e.weight) for e in self.entries),
        )

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        return self.entries

    def __iter__(self) -> Iterator[WeightedQuery]:
        return iter(self.entries)


@dataclass(frozen=True)
class TimedTrace:
    """An arrival trace that *keeps* its times: the timed Workload.

    Where :class:`ArrivalMix` reduces ``(query, arrival_time_s)`` events
    to relative weights, a :class:`TimedTrace` carries the full schedule,
    so a stream-capable evaluator (:class:`~repro.search.evaluators
    .SimulatorEvaluator`) can replay it under queueing — queries arriving
    while earlier ones still run share the cluster, and each job's
    response time includes its contention delay.  Evaluated records then
    carry a :class:`~repro.search.evaluators.LatencyProfile`
    (mean/p95/p99/worst-case response time) next to the usual
    time/energy totals.

    A timed trace still satisfies the plain :class:`Workload` protocol —
    ``weighted_queries()`` derives the same weights its
    :meth:`weights_only` mix would — so optimizer rungs and any
    weights-based consumer keep working.  Its :meth:`cache_key` includes
    the arrival times, so timed evaluations can never collide with (or be
    served from) weights-only cache rows.

    Events sort stably by arrival time at construction; build one with
    :meth:`from_trace` (mixed queries) or :meth:`from_schedule` (one
    query over an arrival-generator schedule).
    """

    name: str
    events: tuple[tuple[JoinWorkloadSpec, float], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", _normalized_events(self.name, self.events, "timed trace")
        )

    @classmethod
    def from_trace(
        cls,
        name: str,
        events: Sequence[tuple[JoinWorkloadSpec, float]],
    ) -> "TimedTrace":
        """Build the trace from ``(query, arrival_time_s)`` events."""
        return cls(name=name, events=tuple(events))

    @classmethod
    def from_schedule(
        cls,
        name: str,
        query: JoinWorkloadSpec,
        arrival_times_s: Sequence[float],
    ) -> "TimedTrace":
        """One query repeated over an arrival schedule.

        Zips directly with the generators of
        :mod:`repro.workloads.arrivals`::

            TimedTrace.from_schedule("burst", q, poisson_arrivals(20, 0.1))
        """
        return cls(name=name, events=tuple((query, t) for t in arrival_times_s))

    def schedule(self) -> tuple[tuple[JoinWorkloadSpec, float], ...]:
        """The ``(query, arrival_time_s)`` events, sorted by arrival time.

        The presence of this accessor is what marks a workload as timed
        (:func:`is_timed`); stream evaluators replay exactly this
        schedule.
        """
        return self.events

    @property
    def span_s(self) -> float:
        """Time of the last arrival (the trace's scheduling horizon)."""
        return self.events[-1][1]

    @property
    def total_weight(self) -> float:
        return float(len(self.events))

    def weights_only(self) -> ArrivalMix:
        """This trace as a weights-only :class:`ArrivalMix`.

        The untimed projection: same queries, same relative frequencies,
        no arrival times — evaluated through the ordinary per-entry
        weighted-aggregation path (and its cache keys).  Built through
        :meth:`ArrivalMix.from_trace` so there is exactly one
        event-counting rule, and the two views can never drift apart.
        """
        return ArrivalMix.from_trace(self.name, self.events)

    def cache_key(self) -> tuple:
        return (
            "timed-trace",
            self.name,
            tuple((join_cache_key(query), time_s) for query, time_s in self.events),
        )

    def with_faults(
        self,
        faults,
        failure_policy=None,
        replication_factor: int | None = None,
        partitions_per_node: int = 2,
    ):
        """This trace under a fault scenario: a
        :class:`~repro.faults.trace.FaultedTrace`.

        ``faults`` is a :class:`~repro.faults.schedule.FaultSchedule`;
        ``failure_policy`` governs jobs a crash kills (default:
        abort-and-retry with capped exponential backoff); a
        ``replication_factor`` additionally sizes a chained-declustering
        layout per candidate, so a crash stranding every copy of a
        partition makes that design infeasible-under-fault.  The result
        stays a timed workload, but its cache key is namespaced by the
        scenario, so degraded evaluations never collide with healthy
        rows.  An empty schedule replays bit-identically to this trace.
        """
        # Deferred: repro.faults imports this module for the type.
        from repro.faults.schedule import FailurePolicy
        from repro.faults.trace import FaultedTrace

        return FaultedTrace(
            trace=self,
            faults=faults,
            failure_policy=(
                failure_policy if failure_policy is not None else FailurePolicy()
            ),
            replication_factor=replication_factor,
            partitions_per_node=partitions_per_node,
        )

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        return self.weights_only().entries

    def __iter__(self) -> Iterator[tuple[JoinWorkloadSpec, float]]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def is_timed(workload) -> bool:
    """Whether a workload carries an arrival schedule (structural check).

    Timed workloads expose a ``schedule()`` accessor returning
    ``(query, arrival_time_s)`` events; the search engine routes them
    through whole-trace stream simulation instead of per-entry weighted
    aggregation.
    """
    return callable(getattr(workload, "schedule", None))


def as_workload(workload: "Workload | JoinWorkloadSpec") -> "Workload":
    """Coerce a bare join spec (or pass through any :class:`Workload`).

    The check is structural, not nominal: suites, trace mixes, and any
    user type exposing ``name``/``cache_key``/``weighted_queries``
    qualify without importing this module.
    """
    if isinstance(workload, JoinWorkloadSpec):
        return SingleJoin(workload)
    if (
        hasattr(workload, "name")
        and callable(getattr(workload, "cache_key", None))
        and callable(getattr(workload, "weighted_queries", None))
    ):
        return workload
    raise WorkloadError(
        f"not a workload: {workload!r} (expected a JoinWorkloadSpec or an "
        "object with name, cache_key() and weighted_queries())"
    )
