"""The first-class ``Workload`` protocol unifying single joins and mixes.

The paper's Section 7 concedes that its single-join results must "expand
the study to include entire workloads".  This module defines the one
interface every evaluation layer — :class:`~repro.search.evaluators
.SearchEvaluator`, :class:`~repro.search.engine.DesignSpaceSearch`,
:class:`~repro.core.design_space.DesignSpaceExplorer`, and the
:class:`~repro.study.Study` facade — accepts:

* ``name`` — a display name;
* ``cache_key()`` — a deterministic, hashable identity used to partition
  the evaluation cache (workload *types* carry distinct tags, so a join,
  a suite, and a trace mix sharing a name can never collide);
* ``weighted_queries()`` / iteration — the workload as weighted
  :class:`WeightedQuery` entries (weights are relative execution
  frequencies; a design's cost is the weight-summed cost of its entries).

Three implementations ship here and in :mod:`repro.workloads.suite`:

* :class:`SingleJoin` — one :class:`~repro.workloads.queries
  .JoinWorkloadSpec` at weight 1 (what every pre-redesign API took);
* :class:`~repro.workloads.suite.WorkloadSuite` — a named, weighted mix;
* :class:`ArrivalMix` — a mix derived from an arrival trace: each
  occurrence of a query in the trace adds one to its weight, so the
  schedules of :mod:`repro.workloads.arrivals` become searchable
  workloads.

Plain :class:`JoinWorkloadSpec` objects are accepted everywhere via
:func:`as_workload`, which wraps them in :class:`SingleJoin` — existing
call sites keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.errors import WorkloadError
from repro.workloads.queries import JoinWorkloadSpec

__all__ = [
    "ArrivalMix",
    "SingleJoin",
    "WeightedQuery",
    "Workload",
    "as_workload",
    "entry_cache_key",
    "join_cache_key",
]


def join_cache_key(query: JoinWorkloadSpec) -> tuple:
    """Deterministic identity of one join spec (the cache-key atom).

    Covers every spec field an evaluator can read — including
    ``tuple_bytes``, which custom evaluators may price even though the
    analytical model only reads volumes.
    """
    return (
        query.name,
        query.build_volume_mb,
        query.probe_volume_mb,
        query.build_selectivity,
        query.probe_selectivity,
        query.method.value,
        query.tuple_bytes,
    )


def entry_cache_key(query: JoinWorkloadSpec) -> tuple:
    """The per-entry evaluation-cache identity of one member join.

    This is the unit the search engine memoizes and dispatches at: every
    workload — single join, suite, trace mix — is flattened into its
    ``weighted_queries()`` entries, and each entry is cached under this
    key (weights apply at aggregation time, so the same join at weight 1
    and weight 5 shares one entry).  It deliberately equals
    :meth:`SingleJoin.cache_key`, so a single-join search and a suite
    containing that join read and write the same cache row.
    """
    return ("join", *join_cache_key(query))


@dataclass(frozen=True)
class WeightedQuery:
    """One join of a workload with its relative execution frequency."""

    query: JoinWorkloadSpec
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(
                f"{self.query.name}: workload weight must be > 0, got {self.weight}"
            )

    def __iter__(self) -> Iterator:
        """Unpack as the ``(spec, weight)`` pair the protocol promises."""
        return iter((self.query, self.weight))


@runtime_checkable
class Workload(Protocol):
    """Anything the evaluation stack can price on a cluster design.

    Structural: any object with ``name``, ``cache_key()`` and
    ``weighted_queries()`` qualifies — :func:`as_workload` checks for
    exactly these three members.
    """

    @property
    def name(self) -> str: ...

    def cache_key(self) -> tuple:
        """Deterministic hashable identity, unique across workload types."""
        ...

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        """The workload as weighted join entries, in evaluation order."""
        ...


@dataclass(frozen=True)
class SingleJoin:
    """A lone join as a :class:`Workload` (the pre-redesign default)."""

    query: JoinWorkloadSpec

    @property
    def name(self) -> str:
        return self.query.name

    def cache_key(self) -> tuple:
        return entry_cache_key(self.query)

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        return (WeightedQuery(self.query, 1.0),)

    def __iter__(self) -> Iterator[WeightedQuery]:
        return iter(self.weighted_queries())


@dataclass(frozen=True)
class ArrivalMix:
    """A workload mix derived from a query arrival trace.

    Each arrival contributes one unit of weight to its query, so a trace
    where a daily report fires five times as often as a weekly rollup
    yields a 5:1 mix.  Build one with :meth:`from_trace` from the
    ``(query, arrival_time_s)`` events an arrival schedule produces
    (:mod:`repro.workloads.arrivals`).
    """

    name: str
    entries: tuple[WeightedQuery, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise WorkloadError(f"arrival mix {self.name!r} has no entries")
        specs = [entry.query for entry in self.entries]
        if len(set(specs)) != len(specs):
            raise WorkloadError(
                f"arrival mix {self.name!r} lists the same query twice"
            )

    @classmethod
    def from_trace(
        cls,
        name: str,
        events: Sequence[tuple[JoinWorkloadSpec, float]],
    ) -> "ArrivalMix":
        """Derive the mix from ``(query, arrival_time_s)`` trace events.

        Queries keep first-appearance order; each event adds weight 1 to
        its query.  Arrival times must be non-negative (they order the
        trace but do not affect the weights).
        """
        if not events:
            raise WorkloadError(f"arrival mix {name!r} needs at least one event")
        counts: dict[JoinWorkloadSpec, int] = {}
        for query, arrival_s in events:
            if arrival_s < 0:
                raise WorkloadError(
                    f"arrival mix {name!r}: arrival times must be >= 0, "
                    f"got {arrival_s}"
                )
            counts[query] = counts.get(query, 0) + 1
        return cls(
            name=name,
            entries=tuple(
                WeightedQuery(query, float(count)) for query, count in counts.items()
            ),
        )

    @property
    def total_weight(self) -> float:
        return sum(entry.weight for entry in self.entries)

    def cache_key(self) -> tuple:
        return (
            "trace",
            self.name,
            tuple((join_cache_key(e.query), e.weight) for e in self.entries),
        )

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        return self.entries

    def __iter__(self) -> Iterator[WeightedQuery]:
        return iter(self.entries)


def as_workload(workload: "Workload | JoinWorkloadSpec") -> "Workload":
    """Coerce a bare join spec (or pass through any :class:`Workload`).

    The check is structural, not nominal: suites, trace mixes, and any
    user type exposing ``name``/``cache_key``/``weighted_queries``
    qualify without importing this module.
    """
    if isinstance(workload, JoinWorkloadSpec):
        return SingleJoin(workload)
    if (
        hasattr(workload, "name")
        and callable(getattr(workload, "cache_key", None))
        and callable(getattr(workload, "weighted_queries", None))
    ):
        return workload
    raise WorkloadError(
        f"not a workload: {workload!r} (expected a JoinWorkloadSpec or an "
        "object with name, cache_key() and weighted_queries())"
    )
