"""Single-node in-memory hash-join energy microbenchmark (Figure 6).

Section 5.1 runs a cache-conscious, multi-threaded hash join between a
10 MB build table (100 K rows x 100 B) and a 2 GB probe table (20 M rows x
100 B) on five systems, measuring wall-outlet energy.  The headline result:
**Laptop B consumes the least energy (~800 J) even though the workstations
are much faster**, because its power draw drops far more than its
performance does.

:func:`simulate_microbench` reproduces the measurement using each system's
hash-join throughput and power model (see
:mod:`repro.hardware.presets` for the calibration notes).
:func:`run_functional_microbench` actually executes a scaled-down join via
functional P-store operators, for correctness-level validation of the
kernel the numbers describe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import RecordBatch
from repro.errors import WorkloadError
from repro.hardware.node import NodeSpec

__all__ = [
    "MicroJoinSpec",
    "MicrobenchResult",
    "FIGURE6_JOIN",
    "simulate_microbench",
    "run_functional_microbench",
]


@dataclass(frozen=True)
class MicroJoinSpec:
    """Build/probe table shapes for the microbenchmark."""

    build_rows: int
    probe_rows: int
    row_bytes: int

    def __post_init__(self) -> None:
        if min(self.build_rows, self.probe_rows, self.row_bytes) <= 0:
            raise WorkloadError("microbench spec fields must all be > 0")

    @property
    def build_mb(self) -> float:
        return self.build_rows * self.row_bytes / 1e6

    @property
    def probe_mb(self) -> float:
        return self.probe_rows * self.row_bytes / 1e6

    @property
    def total_mb(self) -> float:
        return self.build_mb + self.probe_mb


#: The paper's join: 0.1 M x 20 M rows of 100-byte tuples (10 MB x 2 GB).
FIGURE6_JOIN = MicroJoinSpec(build_rows=100_000, probe_rows=20_000_000, row_bytes=100)


@dataclass(frozen=True)
class MicrobenchResult:
    """Outcome for one system: the (response time, energy) point of Figure 6."""

    system: str
    response_time_s: float
    energy_j: float

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.response_time_s


def simulate_microbench(
    system: NodeSpec, spec: MicroJoinSpec = FIGURE6_JOIN
) -> MicrobenchResult:
    """Model the in-memory join on one system.

    The kernel is CPU-bound and multi-threaded, so the node runs at full
    utilization for ``total_bytes / join_throughput`` seconds; energy is
    that duration times the system's full-load power.
    """
    response_time = spec.total_mb / system.cpu_bandwidth_mbps
    watts = system.power_model.power(1.0)
    return MicrobenchResult(
        system=system.name,
        response_time_s=response_time,
        energy_j=watts * response_time,
    )


def run_functional_microbench(
    scale: float = 0.001, seed: int = 7
) -> tuple[int, RecordBatch]:
    """Actually execute a scaled-down version of the Figure 6 join.

    Returns ``(expected_matches, joined_batch)`` where ``expected_matches``
    is computed independently of the join operator, so tests can check the
    kernel end-to-end.
    """
    if not 0 < scale <= 1.0:
        raise WorkloadError(f"scale must be in (0, 1], got {scale}")
    # Import here to avoid a package cycle (pstore depends on workloads).
    from repro.pstore.operators.hashjoin import hash_join_batches

    rng = np.random.default_rng(seed)
    build_rows = max(1, int(FIGURE6_JOIN.build_rows * scale))
    probe_rows = max(1, int(FIGURE6_JOIN.probe_rows * scale))
    build = RecordBatch(
        {
            "key": np.arange(build_rows, dtype=np.int64),
            "build_payload": rng.integers(0, 1 << 30, size=build_rows, dtype=np.int64),
        }
    )
    probe_keys = rng.integers(0, 2 * build_rows, size=probe_rows, dtype=np.int64)
    probe = RecordBatch(
        {
            "key": probe_keys,
            "probe_payload": rng.integers(0, 1 << 30, size=probe_rows, dtype=np.int64),
        }
    )
    expected_matches = int(np.count_nonzero(probe_keys < build_rows))
    joined = hash_join_batches(build, probe, key="key")
    return expected_matches, joined
