"""Node specifications: the per-server inputs of the paper's model (Table 3).

A :class:`NodeSpec` bundles the hardware parameters the paper's analytical
model and our simulator consume:

* ``cpu_bandwidth_mbps`` — maximum CPU processing bandwidth (``CB``/``CW``),
* ``memory_mb`` — memory usable for hash tables (``MB``/``MW``),
* ``disk_bandwidth_mbps`` — storage scan bandwidth (``I``),
* ``nic_bandwidth_mbps`` — usable network bandwidth per direction (``L``),
* ``power_model`` — watts as a function of CPU utilization (``fB``/``fW``),
* ``engine_base_utilization`` — the P-store CPU constant (``GB``/``GW``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigurationError
from repro.hardware.power import MIN_UTILIZATION, PowerModel
from repro.units import clamp

__all__ = ["NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Immutable description of one cluster node."""

    name: str
    cpu_bandwidth_mbps: float
    memory_mb: float
    disk_bandwidth_mbps: float
    nic_bandwidth_mbps: float
    power_model: PowerModel
    engine_base_utilization: float = 0.0
    cores: int = 4
    threads: int = 8
    #: free-form documentation fields used by the Table 1 / Table 2 renderers
    description: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        for attr in (
            "cpu_bandwidth_mbps",
            "memory_mb",
            "disk_bandwidth_mbps",
            "nic_bandwidth_mbps",
        ):
            value = getattr(self, attr)
            if value <= 0:
                raise ConfigurationError(f"{self.name}: {attr} must be > 0, got {value}")
        if not 0.0 <= self.engine_base_utilization < 1.0:
            raise ConfigurationError(
                f"{self.name}: engine_base_utilization must be in [0, 1), "
                f"got {self.engine_base_utilization}"
            )
        if self.cores <= 0 or self.threads <= 0:
            raise ConfigurationError(f"{self.name}: cores/threads must be positive")

    def utilization(self, processing_rate_mbps: float) -> float:
        """CPU utilization when the node processes data at the given rate.

        Implements ``G + U / C`` from the paper's model, clamped to
        ``[MIN_UTILIZATION, 1.0]``.
        """
        if processing_rate_mbps < 0:
            raise ConfigurationError(f"negative processing rate: {processing_rate_mbps}")
        raw = self.engine_base_utilization + processing_rate_mbps / self.cpu_bandwidth_mbps
        return clamp(raw, MIN_UTILIZATION, 1.0)

    def power_at_rate(self, processing_rate_mbps: float) -> float:
        """Watts drawn while processing data at ``processing_rate_mbps``."""
        return self.power_model.power(self.utilization(processing_rate_mbps))

    @property
    def idle_power_w(self) -> float:
        """Watts drawn with the engine idle (utilization floor only)."""
        return self.power_model.power(
            max(MIN_UTILIZATION, self.engine_base_utilization)
        )

    @property
    def peak_power_w(self) -> float:
        """Watts drawn at 100% CPU utilization."""
        return self.power_model.power(1.0)

    def with_overrides(self, **changes: Any) -> "NodeSpec":
        """Copy of this spec with the given fields replaced.

        The paper's design exploration does this repeatedly, e.g. modelling
        cluster-V nodes *"as if they each had four Crucial SSDs"*
        (``disk_bandwidth_mbps=1200``).
        """
        return replace(self, **changes)

    def __str__(self) -> str:
        return (
            f"{self.name}(cpu={self.cpu_bandwidth_mbps:g}MB/s, "
            f"mem={self.memory_mb:g}MB, disk={self.disk_bandwidth_mbps:g}MB/s, "
            f"nic={self.nic_bandwidth_mbps:g}MB/s)"
        )
