"""Server power-state transitions: the cost of turning nodes off.

Section 2: "One [approach] is to consolidate work onto few servers and turn
off unused servers.  However, switching servers on and off has direct costs
such as increased query latency and decreased hardware reliability."

This module makes those costs explicit so downsizing decisions can account
for them: a :class:`PowerStateModel` prices the shutdown/boot cycle of a
node, and :func:`downsizing_break_even_s` answers the operational question
the paper's Figure 12(b) raises — *how long must the small configuration
run before powering nodes down actually pays?*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.node import NodeSpec

__all__ = ["PowerStateModel", "downsizing_break_even_s", "TRADITIONAL_SERVER"]


@dataclass(frozen=True)
class PowerStateModel:
    """Time and energy cost of one off/on cycle for a node.

    Boot and shutdown draw near-peak power (spin-up, fsck, service start),
    so the cycle costs energy as well as latency.
    """

    shutdown_s: float = 30.0
    boot_s: float = 120.0
    #: fraction of the node's peak power drawn during transitions
    transition_power_fraction: float = 0.8
    #: fraction of the node's *idle* power still drawn while gated (standby
    #: leakage, BMC, wake-on-LAN circuitry; 0 means a hard power-off)
    gated_power_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.shutdown_s < 0 or self.boot_s < 0:
            raise ConfigurationError("transition times must be >= 0")
        if not 0.0 < self.transition_power_fraction <= 1.0:
            raise ConfigurationError(
                "transition power fraction must be in (0, 1], got "
                f"{self.transition_power_fraction}"
            )
        if not 0.0 <= self.gated_power_fraction < 1.0:
            raise ConfigurationError(
                "gated power fraction must be in [0, 1), got "
                f"{self.gated_power_fraction}"
            )

    @property
    def cycle_s(self) -> float:
        return self.shutdown_s + self.boot_s

    def cycle_energy_j(self, node: NodeSpec) -> float:
        """Energy of one full off/on cycle of ``node``."""
        return self.cycle_s * self.transition_power_fraction * node.peak_power_w

    def gated_power_w(self, node: NodeSpec) -> float:
        """Watts ``node`` draws while gated (standby residual)."""
        return self.gated_power_fraction * node.idle_power_w


#: typical enterprise rack server (order-of-minutes boot)
TRADITIONAL_SERVER = PowerStateModel()


def downsizing_break_even_s(
    node: NodeSpec,
    idle_nodes: int = 1,
    model: PowerStateModel = TRADITIONAL_SERVER,
) -> float:
    """Seconds the shrunk configuration must persist to repay the cycle.

    Powering ``idle_nodes`` nodes down saves their engine-idle power while
    off, but costs one transition cycle each.  The break-even duration is

        cycle_energy / idle_power_per_node

    independent of how many nodes are cycled (both sides scale together) —
    exposed for clarity and testing.
    """
    if idle_nodes <= 0:
        raise ConfigurationError(f"idle_nodes must be > 0, got {idle_nodes}")
    idle_power = node.idle_power_w
    if idle_power <= 0:
        raise ConfigurationError(f"{node.name}: idle power must be > 0")
    return model.cycle_energy_j(node) / idle_power


def downsizing_net_energy_j(
    node: NodeSpec,
    idle_nodes: int,
    off_duration_s: float,
    model: PowerStateModel = TRADITIONAL_SERVER,
) -> float:
    """Net energy saved (positive) or wasted (negative) by a power-down.

    ``off_duration_s`` is how long the nodes stay off before they are
    needed again.
    """
    if off_duration_s < 0:
        raise ConfigurationError(f"off duration must be >= 0, got {off_duration_s}")
    saved = idle_nodes * node.idle_power_w * off_duration_s
    spent = idle_nodes * model.cycle_energy_j(node)
    return saved - spent
