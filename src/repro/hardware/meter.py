"""Simulated power meters.

The paper measures power two ways:

* **WattsUp Pro** wall meters — 1 Hz sampling, +/-1.5% accuracy (Section 5.1);
* **HP iLO2** remote management — power averaged over 5-minute windows,
  reported three times per utilization level (Section 3.1).

Both are reproduced here as instruments that sample an arbitrary
``power(t) -> watts`` function.  The simulator's power traces and the node
power models both provide such functions, so calibration experiments can be
run against "measured" data with realistic noise, exactly mirroring how the
authors derived their regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PowerSample", "WattsUpMeter", "ILO2Interface"]

PowerFunction = Callable[[float], float]


@dataclass(frozen=True)
class PowerSample:
    """One meter reading: wall-clock time and watts."""

    time_s: float
    watts: float


class WattsUpMeter:
    """WattsUp-Pro-style wall meter: periodic sampling with bounded error.

    Parameters
    ----------
    sample_hz:
        Sampling frequency; the real instrument reports once per second.
    accuracy:
        Symmetric relative error bound; the datasheet value is +/-1.5%.
    seed:
        Seed for the error distribution, so experiments are reproducible.
    """

    def __init__(self, sample_hz: float = 1.0, accuracy: float = 0.015, seed: int | None = None):
        if sample_hz <= 0:
            raise ConfigurationError(f"sample_hz must be > 0, got {sample_hz}")
        if accuracy < 0:
            raise ConfigurationError(f"accuracy must be >= 0, got {accuracy}")
        self.sample_hz = sample_hz
        self.accuracy = accuracy
        self._rng = np.random.default_rng(seed)

    def sample(self, power_fn: PowerFunction, duration_s: float) -> list[PowerSample]:
        """Sample ``power_fn`` for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration_s}")
        period = 1.0 / self.sample_hz
        times = np.arange(period, duration_s + 1e-9, period)
        samples = []
        for t in times:
            true_watts = power_fn(float(t))
            if true_watts < 0:
                raise ConfigurationError(f"power function returned {true_watts} W at t={t}")
            error = self._rng.uniform(-self.accuracy, self.accuracy)
            samples.append(PowerSample(time_s=float(t), watts=true_watts * (1.0 + error)))
        return samples

    @staticmethod
    def energy_joules(samples: Sequence[PowerSample]) -> float:
        """Trapezoidal energy estimate from a sample series."""
        if len(samples) < 2:
            raise ConfigurationError("need at least two samples to integrate energy")
        times = np.asarray([s.time_s for s in samples])
        watts = np.asarray([s.watts for s in samples])
        return float(np.trapezoid(watts, times))

    @staticmethod
    def average_watts(samples: Sequence[PowerSample]) -> float:
        if not samples:
            raise ConfigurationError("no samples")
        return float(np.mean([s.watts for s in samples]))


class ILO2Interface:
    """iLO2-style management interface: windowed power averages.

    ``measure`` runs ``windows`` consecutive averaging windows (the paper
    used three 5-minute windows per utilization level) and returns the mean
    of the window averages — the quantity the authors fed into their
    regression fits.
    """

    WINDOW_S = 300.0

    def __init__(self, accuracy: float = 0.01, seed: int | None = None):
        if accuracy < 0:
            raise ConfigurationError(f"accuracy must be >= 0, got {accuracy}")
        self.accuracy = accuracy
        self._rng = np.random.default_rng(seed)

    def measure(self, power_fn: PowerFunction, windows: int = 3) -> float:
        """Average power over ``windows`` consecutive 5-minute windows."""
        if windows <= 0:
            raise ConfigurationError(f"windows must be > 0, got {windows}")
        window_means = []
        for w in range(windows):
            start = w * self.WINDOW_S
            # 1 Hz internal sampling within the window, matching iLO2's
            # behaviour of averaging continuous measurements.
            times = start + np.arange(1.0, self.WINDOW_S + 1e-9, 1.0)
            true_mean = float(np.mean([power_fn(float(t)) for t in times]))
            error = self._rng.uniform(-self.accuracy, self.accuracy)
            window_means.append(true_mean * (1.0 + error))
        return float(np.mean(window_means))

    def utilization_sweep(
        self,
        power_at_utilization: Callable[[float], float],
        utilizations: Sequence[float],
        windows: int = 3,
    ) -> list[tuple[float, float]]:
        """Measure steady-state power at each utilization level.

        Returns (utilization, watts) pairs ready for
        :func:`repro.hardware.calibration.fit_best_model` — this is the
        paper's Section 3.1 procedure of running concurrent joins to hold a
        utilization level while iLO2 reports power.
        """
        readings = []
        for util in utilizations:
            if not 0 < util <= 1.0:
                raise ConfigurationError(f"utilization must be in (0, 1], got {util}")
            watts = self.measure(lambda _t: power_at_utilization(util), windows=windows)
            readings.append((util, watts))
        return readings
