"""The paper's published hardware, as ready-made :class:`NodeSpec` objects.

Three node types drive the cluster experiments:

* ``CLUSTER_V_NODE`` — the 16-node Vertica cluster servers (Table 1):
  dual Intel X5550, 48 GB RAM, 8x300 GB disks, 1 Gb/s network, power model
  ``130.03 * C^0.2369``.  Model constants ``CB = 5037 MB/s`` and
  ``GB = 0.25`` come from Table 3.  Section 5.4 models these nodes with
  47 GB usable memory, four SSDs (``I = 1200 MB/s``) and ``L = 100 MB/s``.
* ``BEEFY_L5630`` — the prototype Beefy cluster nodes (Section 5.2):
  dual quad-core Xeon L5630, 32 GB RAM, Crucial C300 SSD.  Section 5.3.1
  gives ``fB = 79.006 * (100u)^0.2451``, ``CB = 4034``, ``MB = 31000``,
  ``I = 270``, ``L = 95``.
* ``WIMPY_LAPTOP_B`` — Laptop B as a server (Table 2 / Section 5.2):
  i7 620m, 8 GB RAM (7 GB usable), Crucial C300 SSD, power model
  ``10.994 * (100c)^0.2875``, ``CW = 1129``, ``GW = 0.13``.

The five Table 2 systems are also provided for the single-node energy
microbenchmark (Figure 6).  The paper publishes their idle powers; their
peak powers and hash-join throughputs are calibration constants chosen so
the Figure 6 scatter is reproduced (Laptop B ~= 800 J lowest energy,
Workstation A ~= 1300 J, workstations fastest at ~10-12 s, Atom slowest).
Each calibration constant is documented inline.
"""

from __future__ import annotations

from repro.hardware.node import NodeSpec
from repro.hardware.power import IdlePeakModel, PowerLawModel

__all__ = [
    "CLUSTER_V_NODE",
    "BEEFY_L5630",
    "WIMPY_LAPTOP_B",
    "WORKSTATION_A",
    "WORKSTATION_B",
    "DESKTOP_ATOM",
    "LAPTOP_A",
    "LAPTOP_B",
    "TABLE2_SYSTEMS",
]

# --------------------------------------------------------------------------
# Cluster nodes (Tables 1 and 3, Section 5)
# --------------------------------------------------------------------------

#: Cluster-V server (Table 1) with the Section 5.4 model parameterization.
CLUSTER_V_NODE = NodeSpec(
    name="cluster-V",
    cpu_bandwidth_mbps=5037.0,  # CB, Table 3
    memory_mb=47_000.0,  # MB, Section 5.4
    disk_bandwidth_mbps=1200.0,  # I, Section 5.4 (four Crucial C300 SSDs)
    nic_bandwidth_mbps=100.0,  # L, Section 5.4 (usable 1 Gb/s payload)
    power_model=PowerLawModel(coefficient=130.03, exponent=0.2369),  # Table 1
    engine_base_utilization=0.25,  # GB, Table 3
    cores=8,
    threads=16,
    description={
        "DBMS": "Vertica",
        "CPU": "Intel X5550 2 sockets",
        "RAM": "48GB",
        "Disks": "8x300GB",
        "Network": "1Gb/s",
        "SysPower": "130.03C^0.2369",
    },
)

#: Prototype Beefy node (Section 5.2/5.3.1): HP SE326M1R2, dual Xeon L5630.
BEEFY_L5630 = NodeSpec(
    name="beefy-L5630",
    cpu_bandwidth_mbps=4034.0,  # CB for this CPU, Section 5.3.1
    memory_mb=31_000.0,  # MB, Section 5.3.1
    disk_bandwidth_mbps=270.0,  # I, Section 5.3.1 (one Crucial C300)
    nic_bandwidth_mbps=95.0,  # L, Section 5.3.1
    power_model=PowerLawModel(coefficient=79.006, exponent=0.2451),  # Section 5.3.1
    engine_base_utilization=0.25,  # GB, Table 3
    cores=8,
    threads=16,
    description={
        "CPU": "2x Xeon L5630 (quad-core)",
        "RAM": "32GB",
        "Disks": "2x Crucial C300 256GB SSD",
        "AvgPowerObserved": "154W",
    },
)

#: Wimpy node: Laptop B operated as a server (Sections 5.1-5.2, Table 3).
WIMPY_LAPTOP_B = NodeSpec(
    name="wimpy-laptopB",
    cpu_bandwidth_mbps=1129.0,  # CW, Table 3
    memory_mb=7_000.0,  # MW, Sections 5.3.1/5.4
    disk_bandwidth_mbps=270.0,  # same C300 SSD as the Beefy prototype
    nic_bandwidth_mbps=95.0,
    power_model=PowerLawModel(coefficient=10.994, exponent=0.2875),  # Table 3
    engine_base_utilization=0.13,  # GW, Table 3
    cores=2,
    threads=4,
    description={
        "CPU": "i7 620m",
        "RAM": "8GB",
        "Disks": "Crucial C300 256GB SSD",
        "IdlePower": "11W (screen off)",
        "AvgPowerObserved": "37W",
    },
)

# --------------------------------------------------------------------------
# Table 2 systems (single-node microbenchmark, Figure 6)
# --------------------------------------------------------------------------
#
# ``cpu_bandwidth_mbps`` here is the *hash-join* throughput of the
# cache-conscious multi-threaded join kernel, i.e. (build+probe bytes) /
# response time — calibrated so the Figure 6 response times are reproduced
# (2.01 GB of input tuples; workstations ~10-12 s, laptops ~40-45 s,
# Atom ~48 s).  Peak powers are calibrated so energies land at the figure's
# values; idle powers are the published Table 2 numbers.

WORKSTATION_A = NodeSpec(
    name="workstation-A",
    cpu_bandwidth_mbps=200.0,  # 2010 MB / ~10 s
    memory_mb=12_000.0,
    disk_bandwidth_mbps=120.0,
    nic_bandwidth_mbps=100.0,
    power_model=IdlePeakModel(idle_w=93.0, peak_w=130.0),
    cores=4,
    threads=8,
    description={"CPU": "i7 920 (4/8)", "RAM": "12GB", "IdlePower": "93W"},
)

WORKSTATION_B = NodeSpec(
    name="workstation-B",
    cpu_bandwidth_mbps=170.0,  # 2010 MB / ~11.8 s
    memory_mb=24_000.0,
    disk_bandwidth_mbps=120.0,
    nic_bandwidth_mbps=100.0,
    power_model=IdlePeakModel(idle_w=69.0, peak_w=93.0),
    cores=4,
    threads=4,
    description={"CPU": "Xeon (4/4)", "RAM": "24GB", "IdlePower": "69W"},
)

DESKTOP_ATOM = NodeSpec(
    name="desktop-atom",
    cpu_bandwidth_mbps=42.0,  # 2010 MB / ~48 s
    memory_mb=4_000.0,
    disk_bandwidth_mbps=80.0,
    nic_bandwidth_mbps=100.0,
    power_model=IdlePeakModel(idle_w=28.0, peak_w=31.5),
    cores=2,
    threads=4,
    description={"CPU": "Atom (2/4)", "RAM": "4GB", "IdlePower": "28W"},
)

LAPTOP_A = NodeSpec(
    name="laptop-A",
    cpu_bandwidth_mbps=45.0,  # 2010 MB / ~44.7 s
    memory_mb=4_000.0,
    disk_bandwidth_mbps=100.0,
    nic_bandwidth_mbps=100.0,
    power_model=IdlePeakModel(idle_w=12.0, peak_w=20.0),
    cores=2,
    threads=2,
    description={"CPU": "Core 2 Duo (2/2)", "RAM": "4GB", "IdlePower": "12W (screen off)"},
)

LAPTOP_B = NodeSpec(
    name="laptop-B",
    cpu_bandwidth_mbps=50.0,  # 2010 MB / ~40 s
    memory_mb=8_000.0,
    disk_bandwidth_mbps=270.0,
    nic_bandwidth_mbps=100.0,
    power_model=IdlePeakModel(idle_w=11.0, peak_w=20.0),
    cores=2,
    threads=4,
    description={"CPU": "i7 620m (2/4)", "RAM": "8GB", "IdlePower": "11W (screen off)"},
)

#: Table 2, in the paper's row order.
TABLE2_SYSTEMS: tuple[NodeSpec, ...] = (
    WORKSTATION_A,
    WORKSTATION_B,
    DESKTOP_ATOM,
    LAPTOP_A,
    LAPTOP_B,
)
