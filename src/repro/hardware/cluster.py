"""Cluster specifications: homogeneous and heterogeneous node collections.

The paper's design space is the ratio of "Beefy" to "Wimpy" nodes in a
fixed-size cluster (Figures 1b, 10, 11, 12c) plus homogeneous size sweeps
(Figures 1a, 2, 3, 4).  :class:`ClusterSpec` supports both:

>>> from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
>>> homo = ClusterSpec.homogeneous(CLUSTER_V_NODE, 8)
>>> mix = ClusterSpec.beefy_wimpy(CLUSTER_V_NODE, 5, WIMPY_LAPTOP_B, 3)
>>> mix.num_nodes, mix.num_beefy, mix.num_wimpy
(8, 5, 3)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.hardware.node import NodeSpec

__all__ = ["NodeGroup", "ClusterSpec"]

#: role labels used by planners and the analytical model
BEEFY = "beefy"
WIMPY = "wimpy"


@dataclass(frozen=True)
class NodeGroup:
    """``count`` identical nodes playing a given role."""

    spec: NodeSpec
    count: int
    role: str = BEEFY

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError(f"node count must be >= 0, got {self.count}")
        if self.role not in (BEEFY, WIMPY):
            raise ConfigurationError(f"unknown node role: {self.role!r}")


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered collection of node groups forming one cluster design."""

    name: str
    groups: tuple[NodeGroup, ...]

    def __post_init__(self) -> None:
        if self.num_nodes == 0:
            raise ConfigurationError(f"cluster {self.name!r} has no nodes")

    # ---------------------------------------------------------------- builders
    @classmethod
    def homogeneous(cls, spec: NodeSpec, count: int, name: str | None = None) -> "ClusterSpec":
        """A cluster of ``count`` identical (Beefy-role) nodes."""
        if count <= 0:
            raise ConfigurationError(f"homogeneous cluster needs count > 0, got {count}")
        return cls(
            name=name or f"{count}x{spec.name}",
            groups=(NodeGroup(spec=spec, count=count, role=BEEFY),),
        )

    @classmethod
    def beefy_wimpy(
        cls,
        beefy: NodeSpec,
        num_beefy: int,
        wimpy: NodeSpec,
        num_wimpy: int,
        name: str | None = None,
    ) -> "ClusterSpec":
        """The paper's ``{NB}B,{NW}W`` mixed design."""
        if num_beefy < 0 or num_wimpy < 0 or num_beefy + num_wimpy == 0:
            raise ConfigurationError(
                f"invalid mix: {num_beefy} beefy + {num_wimpy} wimpy nodes"
            )
        return cls(
            name=name or f"{num_beefy}B,{num_wimpy}W",
            groups=(
                NodeGroup(spec=beefy, count=num_beefy, role=BEEFY),
                NodeGroup(spec=wimpy, count=num_wimpy, role=WIMPY),
            ),
        )

    # ------------------------------------------------------------- inspection
    @property
    def num_nodes(self) -> int:
        return sum(group.count for group in self.groups)

    @property
    def num_beefy(self) -> int:
        return sum(group.count for group in self.groups if group.role == BEEFY)

    @property
    def num_wimpy(self) -> int:
        return sum(group.count for group in self.groups if group.role == WIMPY)

    @property
    def is_homogeneous(self) -> bool:
        specs = {id(group.spec) for group in self.groups if group.count > 0}
        return len(specs) <= 1

    @property
    def beefy_spec(self) -> NodeSpec:
        """Spec of the Beefy group (raises if the cluster has none)."""
        for group in self.groups:
            if group.role == BEEFY and group.count > 0:
                return group.spec
        raise ConfigurationError(f"cluster {self.name!r} has no beefy nodes")

    @property
    def wimpy_spec(self) -> NodeSpec:
        """Spec of the Wimpy group (raises if the cluster has none)."""
        for group in self.groups:
            if group.role == WIMPY and group.count > 0:
                return group.spec
        raise ConfigurationError(f"cluster {self.name!r} has no wimpy nodes")

    def nodes(self) -> Iterator[tuple[NodeSpec, str]]:
        """Yield ``(spec, role)`` once per physical node, beefy nodes first."""
        for group in self.groups:
            for _ in range(group.count):
                yield group.spec, group.role

    @property
    def total_memory_mb(self) -> float:
        return sum(spec.memory_mb for spec, _ in self.nodes())

    @property
    def idle_power_w(self) -> float:
        """Aggregate idle power of the whole cluster."""
        return sum(spec.idle_power_w for spec, _ in self.nodes())

    def subset(self, count: int, name: str | None = None) -> "ClusterSpec":
        """First ``count`` nodes of this cluster as a new spec.

        Used by the homogeneous size sweeps ("vary the cluster size between
        8 and 16 nodes in 2 node increments").
        """
        if not 0 < count <= self.num_nodes:
            raise ConfigurationError(
                f"cannot take {count} nodes from {self.num_nodes}-node cluster"
            )
        remaining = count
        groups: list[NodeGroup] = []
        for group in self.groups:
            take = min(group.count, remaining)
            if take > 0:
                groups.append(NodeGroup(spec=group.spec, count=take, role=group.role))
                remaining -= take
        return ClusterSpec(name=name or f"{self.name}[:{count}]", groups=tuple(groups))

    def __str__(self) -> str:
        parts = ", ".join(f"{g.count}x{g.spec.name}" for g in self.groups if g.count)
        return f"{self.name}({parts})"
