"""Fitting node power models from (utilization, watts) measurements.

Section 3.1 of the paper: *"we explored exponential, power, and logarithmic
regression models, and picked the one with the best R² value"*.  This module
reproduces that workflow: least-squares fits for the three forms (each is
linear after a transform) and selection by R² computed on the original watt
scale.

The table-1 experiment (:mod:`repro.experiments.tables`) drives this with
samples produced by the simulated iLO2 interface and recovers the published
``130.03 * C^0.2369`` model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import CalibrationError
from repro.hardware.power import (
    ExponentialModel,
    LogarithmicModel,
    PowerLawModel,
    PowerModel,
)

__all__ = [
    "CalibrationResult",
    "r_squared",
    "fit_power_law",
    "fit_exponential",
    "fit_logarithmic",
    "fit_best_model",
]

_MIN_SAMPLES = 3


@dataclass(frozen=True)
class CalibrationResult:
    """A fitted power model plus its goodness of fit."""

    model: PowerModel
    r2: float
    family: str

    def __str__(self) -> str:
        return f"{self.family}: {self.model.formula()} (R²={self.r2:.4f})"


def _validate(samples: Sequence[tuple[float, float]]) -> tuple[np.ndarray, np.ndarray]:
    if len(samples) < _MIN_SAMPLES:
        raise CalibrationError(
            f"need at least {_MIN_SAMPLES} samples to fit a power model, got {len(samples)}"
        )
    util = np.asarray([s[0] for s in samples], dtype=float)
    watts = np.asarray([s[1] for s in samples], dtype=float)
    if np.any(util <= 0) or np.any(util > 1.0):
        raise CalibrationError("utilization samples must lie in (0, 1]")
    if np.any(watts <= 0):
        raise CalibrationError("watt samples must be positive")
    return util, watts


def r_squared(observed: Iterable[float], predicted: Iterable[float]) -> float:
    """Coefficient of determination of ``predicted`` against ``observed``."""
    y = np.asarray(list(observed), dtype=float)
    yhat = np.asarray(list(predicted), dtype=float)
    if y.shape != yhat.shape or y.size == 0:
        raise CalibrationError("observed/predicted must be equal-length, non-empty")
    ss_res = float(np.sum((y - yhat) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        # All observations identical: perfect fit iff residuals are zero.
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def _linear_fit(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    """Least-squares slope/intercept of y on x."""
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)


def fit_power_law(samples: Sequence[tuple[float, float]]) -> CalibrationResult:
    """Fit ``W = a * (100u)^b`` by linear regression in log-log space."""
    util, watts = _validate(samples)
    slope, intercept = _linear_fit(np.log(100.0 * util), np.log(watts))
    model = PowerLawModel(coefficient=math.exp(intercept), exponent=slope)
    r2 = r_squared(watts, [model.power(u) for u in util])
    return CalibrationResult(model=model, r2=r2, family="power")


def fit_exponential(samples: Sequence[tuple[float, float]]) -> CalibrationResult:
    """Fit ``W = a * e^(b * 100u)`` by linear regression in semilog space."""
    util, watts = _validate(samples)
    slope, intercept = _linear_fit(100.0 * util, np.log(watts))
    model = ExponentialModel(coefficient=math.exp(intercept), rate=slope)
    r2 = r_squared(watts, [model.power(u) for u in util])
    return CalibrationResult(model=model, r2=r2, family="exponential")


def fit_logarithmic(samples: Sequence[tuple[float, float]]) -> CalibrationResult:
    """Fit ``W = a + b * ln(100u)`` by linear regression."""
    util, watts = _validate(samples)
    slope, intercept = _linear_fit(np.log(100.0 * util), watts)
    model = LogarithmicModel(offset=intercept, slope=slope)
    r2 = r_squared(watts, [model.power(u) for u in util])
    return CalibrationResult(model=model, r2=r2, family="logarithmic")


def fit_best_model(samples: Sequence[tuple[float, float]]) -> CalibrationResult:
    """Fit all three regression families and return the best by R².

    This is exactly the selection procedure of Section 3.1 (which picked the
    power-law form for every server the paper measured).
    """
    candidates = [
        fit_power_law(samples),
        fit_exponential(samples),
        fit_logarithmic(samples),
    ]
    return max(candidates, key=lambda result: result.r2)
