"""Hardware substrate: node specifications, power models, calibration, meters.

This package models the physical testbed of the paper:

* :mod:`repro.hardware.power` — server power as a function of CPU
  utilization (the paper's ``SysPower`` regressions, Table 1/Table 3).
* :mod:`repro.hardware.calibration` — fitting those regressions from
  (utilization, watts) samples, choosing among exponential / power-law /
  logarithmic forms by R² exactly as Section 3.1 describes.
* :mod:`repro.hardware.node` / :mod:`repro.hardware.cluster` — node and
  cluster specifications (CPU bandwidth, memory, disk, NIC).
* :mod:`repro.hardware.meter` — simulated WattsUp Pro (1 Hz, +/-1.5%) and
  iLO2 (5-minute window average) power meters.
* :mod:`repro.hardware.presets` — the paper's published hardware: cluster-V
  nodes, the L5630 Beefy nodes, Laptop B Wimpy nodes, and the five Table 2
  systems.
"""

from repro.hardware.calibration import (
    CalibrationResult,
    fit_best_model,
    fit_exponential,
    fit_logarithmic,
    fit_power_law,
    r_squared,
)
from repro.hardware.cluster import ClusterSpec, NodeGroup
from repro.hardware.meter import ILO2Interface, PowerSample, WattsUpMeter
from repro.hardware.node import NodeSpec
from repro.hardware.power import (
    ExponentialModel,
    IdlePeakModel,
    LogarithmicModel,
    PowerLawModel,
    PowerModel,
)
from repro.hardware.presets import (
    BEEFY_L5630,
    CLUSTER_V_NODE,
    DESKTOP_ATOM,
    LAPTOP_A,
    LAPTOP_B,
    TABLE2_SYSTEMS,
    WIMPY_LAPTOP_B,
    WORKSTATION_A,
    WORKSTATION_B,
)

__all__ = [
    "PowerModel",
    "PowerLawModel",
    "ExponentialModel",
    "LogarithmicModel",
    "IdlePeakModel",
    "CalibrationResult",
    "fit_power_law",
    "fit_exponential",
    "fit_logarithmic",
    "fit_best_model",
    "r_squared",
    "NodeSpec",
    "NodeGroup",
    "ClusterSpec",
    "PowerSample",
    "WattsUpMeter",
    "ILO2Interface",
    "CLUSTER_V_NODE",
    "BEEFY_L5630",
    "WIMPY_LAPTOP_B",
    "WORKSTATION_A",
    "WORKSTATION_B",
    "DESKTOP_ATOM",
    "LAPTOP_A",
    "LAPTOP_B",
    "TABLE2_SYSTEMS",
]
