"""Server power models: watts drawn as a function of CPU utilization.

The paper derives per-node power regressions from measured (CPU utilization,
watts) pairs and reports them in the power-law form

    f(c) = a * (100 c) ** b        (c = CPU utilization in [0, 1])

e.g. the cluster-V nodes follow ``130.03 * (100c)**0.2369`` (Table 1) and the
Wimpy Laptop B follows ``10.994 * (100c)**0.2875`` (Table 3).  Section 3.1
notes the authors also tried exponential and logarithmic regressions and kept
the best R² — all three forms are implemented here so the calibration module
can reproduce that selection.

Utilization inputs are clamped to ``[MIN_UTILIZATION, 1.0]``: a measured
server never reports exactly 0% utilization, and the power-law form would
otherwise predict an unphysical 0 W.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import clamp

__all__ = [
    "MIN_UTILIZATION",
    "PowerModel",
    "PowerLawModel",
    "ExponentialModel",
    "LogarithmicModel",
    "IdlePeakModel",
]

#: Smallest utilization fed into a model; 1% matches the granularity of the
#: paper's iLO2 utilization counters.
MIN_UTILIZATION = 0.01


class PowerModel(ABC):
    """Watts drawn by one node at a given CPU utilization ``c`` in [0, 1]."""

    @abstractmethod
    def power(self, utilization: float) -> float:
        """Return power draw in watts at ``utilization`` (clamped to [0,1])."""

    def energy(self, utilization: float, seconds: float) -> float:
        """Energy in joules for holding ``utilization`` for ``seconds``."""
        if seconds < 0:
            raise ConfigurationError(f"negative duration: {seconds}")
        return self.power(utilization) * seconds

    @property
    def idle_power(self) -> float:
        """Power at the minimum representable utilization."""
        return self.power(MIN_UTILIZATION)

    @property
    def peak_power(self) -> float:
        """Power at 100% utilization."""
        return self.power(1.0)

    def formula(self) -> str:
        """Human-readable formula, used by table renderers."""
        return repr(self)

    def _clamped(self, utilization: float) -> float:
        if math.isnan(utilization):
            raise ConfigurationError("utilization is NaN")
        return clamp(utilization, MIN_UTILIZATION, 1.0)


@dataclass(frozen=True)
class PowerLawModel(PowerModel):
    """``f(c) = coefficient * (100 c) ** exponent`` — the paper's SysPower form.

    ``PowerLawModel(130.03, 0.2369)`` is the cluster-V node model of Table 1.
    """

    coefficient: float
    exponent: float

    def __post_init__(self) -> None:
        if self.coefficient <= 0:
            raise ConfigurationError(f"coefficient must be > 0, got {self.coefficient}")

    def power(self, utilization: float) -> float:
        c = self._clamped(utilization)
        return self.coefficient * (100.0 * c) ** self.exponent

    def formula(self) -> str:
        return f"{self.coefficient:g}*(100c)^{self.exponent:g}"


@dataclass(frozen=True)
class ExponentialModel(PowerModel):
    """``f(c) = coefficient * exp(rate * 100 c)`` — alternative regression form."""

    coefficient: float
    rate: float

    def __post_init__(self) -> None:
        if self.coefficient <= 0:
            raise ConfigurationError(f"coefficient must be > 0, got {self.coefficient}")

    def power(self, utilization: float) -> float:
        c = self._clamped(utilization)
        return self.coefficient * math.exp(self.rate * 100.0 * c)

    def formula(self) -> str:
        return f"{self.coefficient:g}*e^({self.rate:g}*100c)"


@dataclass(frozen=True)
class LogarithmicModel(PowerModel):
    """``f(c) = offset + slope * ln(100 c)`` — alternative regression form."""

    offset: float
    slope: float

    def power(self, utilization: float) -> float:
        c = self._clamped(utilization)
        return max(0.0, self.offset + self.slope * math.log(100.0 * c))

    def formula(self) -> str:
        return f"{self.offset:g}+{self.slope:g}*ln(100c)"


@dataclass(frozen=True)
class IdlePeakModel(PowerModel):
    """Idle-anchored model ``f(c) = idle + (peak - idle) * c ** exponent``.

    Used for the five Table 2 systems where the paper publishes idle power
    directly (93/69/28/12/11 W) rather than a regression.  ``exponent < 1``
    captures the familiar concave utilization/power curve of real servers.
    """

    idle_w: float
    peak_w: float
    exponent: float = 0.8

    def __post_init__(self) -> None:
        if self.idle_w < 0:
            raise ConfigurationError(f"idle power must be >= 0, got {self.idle_w}")
        if self.peak_w < self.idle_w:
            raise ConfigurationError(
                f"peak power ({self.peak_w}) must be >= idle power ({self.idle_w})"
            )
        if self.exponent <= 0:
            raise ConfigurationError(f"exponent must be > 0, got {self.exponent}")

    def power(self, utilization: float) -> float:
        c = self._clamped(utilization)
        return self.idle_w + (self.peak_w - self.idle_w) * c**self.exponent

    @property
    def idle_power(self) -> float:
        return self.idle_w

    def formula(self) -> str:
        return f"{self.idle_w:g}+{self.peak_w - self.idle_w:g}*c^{self.exponent:g}"
