"""DVFS-style frequency scaling of node specs.

The paper's introduction notes heterogeneous design "may also become
important if future hardware (e.g., processor and/or memory subsystems)
allows systems to dynamically control their power/performance trade-offs".
This module provides that control as a spec transformation, so frequency
scaling can be compared head-to-head with downsizing and Wimpy
substitution.

The scaling model is the standard CMOS approximation: at frequency factor
``phi`` (0 < phi <= 1, relative to nominal),

* CPU bandwidth scales linearly: ``C' = phi * C``;
* the *dynamic* component of power scales cubically (voltage tracks
  frequency): ``P'(c) = P_idle + (P(c) - P_idle) * phi**3``.

Disk, NIC, and memory are unaffected — which is exactly why DVFS is so
attractive for network-bound queries: it sheds watts without touching the
bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.node import NodeSpec
from repro.hardware.power import MIN_UTILIZATION, PowerModel

__all__ = ["DVFSPowerModel", "dvfs_variant"]


@dataclass(frozen=True)
class DVFSPowerModel(PowerModel):
    """A base power model with its dynamic component scaled by ``phi**3``."""

    base: PowerModel
    frequency_factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.frequency_factor <= 1.0:
            raise ConfigurationError(
                f"frequency factor must be in (0, 1], got {self.frequency_factor}"
            )

    def power(self, utilization: float) -> float:
        idle = self.base.power(MIN_UTILIZATION)
        dynamic = self.base.power(utilization) - idle
        return idle + dynamic * self.frequency_factor**3

    def formula(self) -> str:
        return (
            f"idle+({self.base.formula()}-idle)*{self.frequency_factor:g}^3"
        )


def dvfs_variant(node: NodeSpec, frequency_factor: float) -> NodeSpec:
    """A copy of ``node`` running at ``frequency_factor`` of nominal clock.

    >>> from repro.hardware.presets import CLUSTER_V_NODE
    >>> slow = dvfs_variant(CLUSTER_V_NODE, 0.6)
    >>> slow.cpu_bandwidth_mbps == 0.6 * CLUSTER_V_NODE.cpu_bandwidth_mbps
    True
    """
    if not 0.0 < frequency_factor <= 1.0:
        raise ConfigurationError(
            f"frequency factor must be in (0, 1], got {frequency_factor}"
        )
    return node.with_overrides(
        name=f"{node.name}@{frequency_factor:.0%}",
        cpu_bandwidth_mbps=node.cpu_bandwidth_mbps * frequency_factor,
        power_model=DVFSPowerModel(node.power_model, frequency_factor),
    )
